#include "runtime/batch_scheduler.h"

#include <algorithm>
#include <limits>

#include "common/log.h"
#include "runtime/fault_model.h"

namespace neupims::runtime {

std::vector<std::vector<int>>
seqLensOf(const std::vector<std::vector<Request *>> &per_channel)
{
    std::vector<std::vector<int>> lens(per_channel.size());
    for (std::size_t ch = 0; ch < per_channel.size(); ++ch) {
        lens[ch].reserve(per_channel[ch].size());
        for (const Request *req : per_channel[ch])
            lens[ch].push_back(req->currentSeqLen());
    }
    return lens;
}

std::vector<std::vector<int>>
IterationSchedule::seqLensPerChannel() const
{
    return seqLensOf(perChannel);
}

std::vector<std::vector<int>>
IterationSchedule::seqLensOfSubBatch1() const
{
    return seqLensOf(subBatches.sb1);
}

std::vector<std::vector<int>>
IterationSchedule::seqLensOfSubBatch2() const
{
    return seqLensOf(subBatches.sb2);
}

double
IterationSchedule::stragglerInflation() const
{
    if (channelSlowdowns.empty())
        return 1.0;
    double max_load = 0.0, max_slowed = 0.0, max_factor = 1.0;
    for (std::size_t ch = 0; ch < channelSlowdowns.size(); ++ch) {
        double load =
            ch < channelLoads.size() ? channelLoads[ch] : 0.0;
        max_load = std::max(max_load, load);
        max_slowed = std::max(max_slowed, load * channelSlowdowns[ch]);
        max_factor = std::max(max_factor, channelSlowdowns[ch]);
    }
    if (max_load <= 0.0)
        return max_factor; // transfer-only boundary: worst window
    return std::max(1.0, max_slowed / max_load);
}

PreemptMode
preemptModeByName(const std::string &name)
{
    if (name == "off")
        return PreemptMode::Off;
    if (name == "recompute")
        return PreemptMode::Recompute;
    if (name == "swap")
        return PreemptMode::Swap;
    fatal("unknown preemption mode '", name,
          "' (expected off|recompute|swap)");
}

const char *
preemptModeName(PreemptMode mode)
{
    switch (mode) {
    case PreemptMode::Off:
        return "off";
    case PreemptMode::Recompute:
        return "recompute";
    case PreemptMode::Swap:
        return "swap";
    }
    return "?";
}

PrefillPolicy
prefillPolicyByName(const std::string &name)
{
    if (name == "legacy")
        return PrefillPolicy::Legacy;
    if (name == "whole")
        return PrefillPolicy::WholePrompt;
    if (name == "chunked")
        return PrefillPolicy::Chunked;
    fatal("unknown prefill policy '", name,
          "' (expected legacy|whole|chunked)");
}

const char *
prefillPolicyName(PrefillPolicy policy)
{
    switch (policy) {
    case PrefillPolicy::Legacy:
        return "legacy";
    case PrefillPolicy::WholePrompt:
        return "whole";
    case PrefillPolicy::Chunked:
        return "chunked";
    }
    return "?";
}

BatchScheduler::BatchScheduler(const SchedulerConfig &cfg,
                               RequestPool &pool, PagedKvCache &kv,
                               FaultModel *fault)
    : cfg_(cfg), pool_(pool), kv_(kv), fault_(fault),
      estimator_(cfg.estimator),
      policy_(makeSchedulingPolicy(cfg.policy, cfg.preempt.victim))
{
    NEUPIMS_ASSERT(!fault_ || !fault_->enabled() ||
                       (cfg_.preempt.enabled() &&
                        cfg_.prefill.enabled()),
                   "fault injection requires preemption and a prefill "
                   "policy: channel-loss recovery force-preempts "
                   "residents in recompute mode and re-dispatches "
                   "them through the restore/prefill path");
    NEUPIMS_ASSERT(cfg_.channels >= 1 && cfg_.maxBatch >= 1);
    NEUPIMS_ASSERT(cfg_.prefill.policy != PrefillPolicy::Chunked ||
                       cfg_.prefill.chunkTokens >= 1,
                   "chunked prefill needs a positive token budget");
    NEUPIMS_ASSERT(cfg_.preempt.mode != PreemptMode::Recompute ||
                       cfg_.prefill.enabled(),
                   "recompute preemption restores through the prefill "
                   "path and needs a prefill policy");
    NEUPIMS_ASSERT(!cfg_.preempt.enabled() ||
                       !cfg_.prefill.enabled() ||
                       cfg_.prefill.piggyback,
                   "preemption requires piggybacked prefill: "
                   "stall-the-world prefill-only iterations exclude "
                   "decode page-holders from the schedule, so an old "
                   "decode resident could never progress nor be "
                   "evicted by a younger prefilling demander — "
                   "deadlock");
    NEUPIMS_ASSERT(cfg_.preempt.mode != PreemptMode::Swap ||
                       cfg_.preempt.swapGBps > 0,
                   "swap preemption needs a positive host link rate");
}

bool
BatchScheduler::lazyKvAlloc() const
{
    // Chunk-by-chunk reservation makes mid-prefill preemption
    // meaningful; it is tied to preemption so PreemptMode::Off keeps
    // the legacy whole-prompt-at-admission accounting bit-for-bit.
    return cfg_.preempt.enabled() && cfg_.prefill.enabled();
}

int
BatchScheduler::admissionTokens(const Request &req) const
{
    if (!lazyKvAlloc())
        return req.currentSeqLen();
    // Admission only secures the first prefill chunk's pages; later
    // chunks reserve as their slices land (or preempt a victim).
    int remaining = req.remainingPrefill();
    if (cfg_.prefill.policy == PrefillPolicy::Chunked)
        remaining = std::min(remaining, cfg_.prefill.chunkTokens);
    return std::max(1, remaining);
}

std::vector<bool>
BatchScheduler::urgentChannels()
{
    std::vector<bool> urgent(static_cast<std::size_t>(cfg_.channels),
                             false);
    for (const Request *res : pool_.runningRequests()) {
        if (res->channel >= 0 && res->channel < cfg_.channels &&
            policy_->urgency(*res, now_) >= 0.5)
            urgent[res->channel] = true;
    }
    return urgent;
}

template <typename Room>
ChannelId
BatchScheduler::placeByUrgency(const Request &req,
                               const std::vector<double> &loads,
                               const Room &room)
{
    if (cfg_.minLoadPacking) {
        // Min-load channel among those with KV room (Algorithm 2).
        // The packer consults the policy's urgency: a low-urgency
        // request prefers channels hosting no urgent resident
        // (min-load within that subset, falling back to all), so
        // urgent requests keep KV headroom and see less co-located
        // pressure churn without distorting the load balance. Fcfs
        // reports urgency 1.0 for everything, leaving the historical
        // min-load packing bit-for-bit.
        const bool isolate = policy_->urgency(req, now_) < 0.5;
        std::vector<bool> urgent;
        if (isolate)
            urgent = urgentChannels();
        ChannelId best = kInvalidId;
        bool bestAvoids = false;
        for (ChannelId ch = 0; ch < cfg_.channels; ++ch) {
            // Offline channels (failed or browned out) leave the
            // packer — no new placement until restored. Always true
            // with faults disabled.
            if (!kv_.channelOnline(ch) || !room(ch))
                continue;
            bool avoids = isolate && !urgent[ch];
            if (best == kInvalidId || (avoids && !bestAvoids) ||
                (avoids == bestAvoids && loads[ch] < loads[best])) {
                best = ch;
                bestAvoids = avoids;
            }
        }
        return best;
    }
    // Round-robin: first channel with room, starting at the cursor.
    for (int probe = 0; probe < cfg_.channels; ++probe) {
        ChannelId ch = (rrCursor_ + probe) % cfg_.channels;
        if (kv_.channelOnline(ch) && room(ch)) {
            rrCursor_ = (ch + 1) % cfg_.channels;
            return ch;
        }
    }
    return kInvalidId;
}

ChannelId
BatchScheduler::pickChannel(const Request &req,
                            std::vector<double> &loads)
{
    int tokens = lazyKvAlloc() ? admissionTokens(req)
                               : req.currentSeqLen();
    return placeByUrgency(req, loads, [&](ChannelId ch) {
        return kv_.canAllocate(ch, tokens);
    });
}

ChannelId
BatchScheduler::pickChannelWithPages(
    const Request &req, std::int64_t pages,
    const std::vector<double> &loads,
    const std::vector<std::int64_t> &reserved)
{
    return placeByUrgency(req, loads, [&](ChannelId ch) {
        return kv_.freePages(ch) - reserved[ch] >= pages;
    });
}

RequestId
BatchScheduler::nextAdmission(IterationSchedule &out)
{
    const bool preempting = cfg_.preempt.enabled();
    while (pool_.waitingCount() > 0) {
        // Stable minimum under the policy's admission order: ties
        // keep waiting-queue (arrival) order. Fcfs never prefers, so
        // it declares reordersAdmission() false and keeps the O(1)
        // head pop instead of scanning the queue.
        const auto &waiting = pool_.waitingIds();
        RequestId pick = waiting.front();
        if (policy_->reordersAdmission()) {
            for (RequestId id : waiting) {
                if (policy_->admitBefore(pool_.request(id),
                                         pool_.request(pick), now_))
                    pick = id;
            }
        }
        if (!preempting)
            return pick;
        // A sequence eventually holds prompt + output tokens on a
        // single channel. A pick that exceeds that bound can never
        // complete — under preemption it would evict the whole
        // channel and still not fit, a livelock; reject it instead
        // of stalling admission, and re-pick.
        const Request &req = pool_.request(pick);
        std::int64_t worst = kv_.pagesForTokens(req.inputLength +
                                                req.outputLength);
        if (worst <= kv_.config().pagesPerChannel())
            return pick;
        pool_.dropWaiting(pick);
        out.droppedNeverFit.push_back(pick);
        ++preemptStats_.neverFitDrops;
    }
    return kInvalidId;
}

void
BatchScheduler::restorePreempted(IterationSchedule &out,
                                 std::vector<double> &loads,
                                 std::vector<std::int64_t> reserved)
{
    // Runs after resolveMemoryPressure, so restores only consume
    // pages the scheduled work left over: a restored request joins
    // the batch at the NEXT boundary (its transfer occupies this
    // iteration) and cannot be churned right back out by this
    // iteration's own demands.
    while (pool_.preemptedCount() > 0 &&
           pool_.runningCount() <
               static_cast<std::size_t>(cfg_.maxBatch)) {
        // Policy restore order (stable minimum: ties keep eviction
        // FIFO order, which is exactly what Fcfs degrades to), never
        // bouncing a victim of this very boundary straight back in
        // (it would ride its own freed pages out and back, pure
        // transfer churn). A blocked pick blocks the queue: with a
        // policy order, anything it outranks must keep waiting behind
        // it (no overtaking, bounded starvation).
        Request *req = nullptr;
        for (Request *cand : pool_.preemptedRequests()) {
            bool evicted_now = false;
            for (const Request *p : out.preemptedNow)
                evicted_now = evicted_now || p == cand;
            if (evicted_now)
                continue;
            if (!req || policy_->restoreBefore(*cand, *req, now_))
                req = cand;
        }
        if (!req)
            break;
        // Per-request restore route, not per-config: under a Swap
        // config a fault victim was *evicted* (its channel died with
        // its pages — nothing to swap back in), so it restores
        // through the recompute/bind path while ordinary swap
        // victims transfer back from the host tier.
        if (!kv_.isSwappedOut(req->id)) {
            std::int64_t pages =
                kv_.pagesForTokens(admissionTokens(*req));
            ChannelId ch =
                pickChannelWithPages(*req, pages, loads, reserved);
            if (ch == kInvalidId)
                break;
            req->channel = ch;
            // Recompute restores walk the prefix index too: a victim
            // whose prefix pages stayed shared (or were republished
            // by a concurrent session) rebuilds only the unshared
            // suffix through prefill.
            int cached =
                kv_.bindSequence(req->id, ch, req->promptTokens);
            if (cached > 0)
                req->skipCachedPrefix(cached);
            // The bind itself can consume free capacity beyond the
            // picked estimate: reviving cached (refcount-0) index
            // pages takes them out of the reclaimable pool, and the
            // first chunk's actual bill differs from the raw page
            // math (after a prefix hit it starts mid-page; a shared
            // partial tail adds the COW page). Re-check the channel
            // against the boundary's outstanding reservations — if
            // the revival ate into pages the scheduled work was
            // promised, roll the bind back (dereference the revived
            // pages, reset the prefill skip) and stall restores
            // until a later boundary.
            std::int64_t append_need =
                kv_.pagesForAppend(req->id, admissionTokens(*req));
            if (kv_.freePages(ch) - reserved[ch] < append_need) {
                kv_.evictSequence(req->id);
                req->prefilledTokens = 0;
                req->cachedPrefixTokens = 0;
                break;
            }
            // Count the chunk bill against later restores now, or
            // every queued restore would see the same room and pile
            // onto one channel. (The revival bill already landed in
            // freePages itself.)
            reserved[ch] += append_need;
        } else {
            std::int64_t pages = kv_.hostPagesOf(req->id);
            ChannelId ch =
                pickChannelWithPages(*req, pages, loads, reserved);
            if (ch == kInvalidId)
                break;
            Bytes bytes = kv_.swapIn(req->id, ch);
            req->channel = ch;
            out.swapInBytes += bytes;
            preemptStats_.swapInBytes += bytes;
        }
        pool_.restore(req->id);
        loads[req->channel] +=
            estimator_.estimate(req->currentSeqLen());
        out.restoredNow.push_back(req);
        ++preemptStats_.restores;
    }
}

std::vector<std::int64_t>
BatchScheduler::resolveMemoryPressure(IterationSchedule &out,
                                      std::vector<double> &loads)
{
    std::vector<std::int64_t> reservedPerChannel(
        static_cast<std::size_t>(cfg_.channels), 0);
    const bool recompute = cfg_.preempt.mode == PreemptMode::Recompute;
    const bool lazy = lazyKvAlloc();

    // One page-demanding unit of this schedule: a decode append (one
    // token) or a prefill slice (chunk growth). Resolved in the
    // policy's pressure order (Fcfs: ascending RequestId ==
    // submission order, the age-priority rule vLLM's scheduler
    // uses): a demander may only evict requests it strictly
    // outranks, so the top-ranked request in the system always makes
    // progress and preemption cannot livelock — any strict total
    // order inherits the argument (DESIGN.md §8). A demander that
    // cannot be satisfied even after evicting every outranked
    // resident stalls for this iteration (its work is removed; it
    // keeps its pages) instead of churning.
    struct Demand
    {
        Request *req;
        int tokens; ///< KV growth this iteration
    };
    std::vector<std::vector<Demand>> demands(
        static_cast<std::size_t>(cfg_.channels));
    for (Request *req : out.batch)
        demands[req->channel].push_back(Demand{req, 1});
    if (lazy) {
        for (const PrefillSlice &slice : out.prefill)
            demands[slice.req->channel].push_back(
                Demand{slice.req, slice.tokens});
    }

    auto drop_work = [&](Request *req) {
        out.batch.erase(
            std::remove(out.batch.begin(), out.batch.end(), req),
            out.batch.end());
        out.prefill.erase(
            std::remove_if(out.prefill.begin(), out.prefill.end(),
                           [req](const PrefillSlice &slice) {
                               return slice.req == req;
                           }),
            out.prefill.end());
    };

    auto pick_victim = [&](ChannelId ch,
                           const Request &demander) -> Request * {
        // Candidates: residents of the channel the demander strictly
        // outranks that hold pages (evicting a page-less request
        // frees nothing; its own demands are resolved on its own
        // turn). Eviction frees only the unshared suffix — pages the
        // victim holds by reference alongside another live sequence
        // stay resident for the other holder — so victimScore sees
        // the *evictable* count, not the raw footprint (the
        // refcount-aware obligation stated with §8.1's livelock rule;
        // DESIGN.md §13). A victim whose every page is shared frees
        // nothing immediately but stays eligible: evicting it drops
        // the refcounts, so its co-holders' pages become evictable on
        // the very next pick and the eviction loop still terminates
        // (each pick shrinks the resident set). The policy scores
        // them; the highest score evicts first, ties toward the most
        // recently (re)admitted (cands follows running order:
        // back() == youngest), which makes LifoYoungest exactly a
        // constant score.
        std::vector<Request *> cands;
        for (Request *req : pool_.runningRequests()) {
            if (req->channel != ch ||
                !policy_->outranks(demander, *req, now_))
                continue;
            if (kv_.evictablePagesOf(req->id) <= 0 &&
                kv_.sharedPagesOf(req->id) <= 0)
                continue;
            cands.push_back(req);
        }
        if (cands.empty())
            return nullptr;
        Request *victim = cands.front();
        double best = policy_->victimScore(
            *victim, kv_.evictablePagesOf(victim->id), now_);
        for (Request *req : cands) {
            double score = policy_->victimScore(
                *req, kv_.evictablePagesOf(req->id), now_);
            if (score >= best) {
                victim = req;
                best = score;
            }
        }
        return victim;
    };

    auto preempt_victim = [&](Request *victim,
                              std::vector<Demand> &channel_demands) {
        drop_work(victim);
        channel_demands.erase(
            std::remove_if(channel_demands.begin(),
                           channel_demands.end(),
                           [victim](const Demand &d) {
                               return d.req == victim;
                           }),
            channel_demands.end());
        loads[victim->channel] -=
            estimator_.estimate(victim->currentSeqLen());
        if (recompute) {
            preemptStats_.pagesFreed += static_cast<std::uint64_t>(
                kv_.evictSequence(victim->id));
        } else {
            Bytes bytes = kv_.swapOut(victim->id);
            out.swapOutBytes += bytes;
            preemptStats_.swapOutBytes += bytes;
        }
        pool_.preempt(victim->id, recompute);
        out.preemptedNow.push_back(victim);
        ++preemptStats_.preemptions;
    };

    for (ChannelId ch = 0; ch < cfg_.channels; ++ch) {
        auto &chd = demands[ch];
        std::sort(chd.begin(), chd.end(),
                  [this](const Demand &a, const Demand &b) {
                      return policy_->outranks(*a.req, *b.req, now_);
                  });
        std::int64_t reserved = 0; // pages granted to earlier ranks
        for (std::size_t i = 0; i < chd.size(); ++i) {
            // Every entry reached here is live: preempt_victim erases
            // a victim's entries, and victims — strictly outranked —
            // sort strictly after the current demander, so erasures
            // never touch positions already consumed (a stalled
            // demander keeps its entry, but it was consumed on its
            // own turn).
            Request *req = chd[i].req;
            std::int64_t need =
                kv_.pagesForAppend(req->id, chd[i].tokens);
            while (need > kv_.freePages(ch) - reserved) {
                Request *victim = pick_victim(ch, *req);
                if (!victim) {
                    drop_work(req); // stall: keep pages, skip a turn
                    need = -1;
                    break;
                }
                preempt_victim(victim, chd);
            }
            if (need >= 0)
                reserved += need;
        }
        reservedPerChannel[ch] = reserved;
    }
    return reservedPerChannel;
}

void
BatchScheduler::schedulePrefill(
    IterationSchedule &out, const std::vector<Request *> &running)
{
    // The policy's pressure order (Fcfs: submission age — earlier
    // prompts finish their prefill first, bounding TTFT head-of-line
    // effects). The token budget MUST follow the same order the
    // pressure resolver uses for eviction priority: handing budget to
    // a request that cannot take pages from the residents outranking
    // it would deadlock the two orders against each other — the
    // livelock-freedom obligation a SchedulingPolicy signs up for by
    // making outranks() one strict total order owning both decisions.
    std::vector<Request *> by_rank(running.begin(), running.end());
    std::sort(by_rank.begin(), by_rank.end(),
              [this](const Request *a, const Request *b) {
                  return policy_->outranks(*a, *b, now_);
              });
    int budget = cfg_.prefill.policy == PrefillPolicy::Chunked
                     ? cfg_.prefill.chunkTokens
                     : std::numeric_limits<int>::max();
    for (Request *req : by_rank) {
        if (!req->prefilling())
            continue;
        if (budget <= 0)
            break;
        int tokens = std::min(req->remainingPrefill(), budget);
        NEUPIMS_ASSERT(tokens >= 1);
        out.prefill.push_back(
            PrefillSlice{req, req->prefilledTokens, tokens});
        budget -= tokens;
    }
}

void
BatchScheduler::applyFaults(IterationSchedule &out)
{
    if (!fault_ || !fault_->enabled())
        return;
    FaultModel::Transitions tr = fault_->advanceTo(now_);
    for (ChannelId ch : tr.restored)
        kv_.setChannelOnline(ch, true);
    for (ChannelId ch : tr.brownedOut) {
        kv_.setChannelOnline(ch, false);
        ++preemptStats_.brownouts;
    }
    for (ChannelId ch : tr.failed) {
        // Force-preempt every resident of the failed channel in
        // recompute mode — its KV pages are gone, so the restore
        // rebuilds the sequence through chunked prefill on a
        // surviving channel under the active SchedulingPolicy.
        for (Request *req : pool_.runningRequests()) {
            if (req->channel != ch)
                continue;
            preemptStats_.pagesFreed += static_cast<std::uint64_t>(
                kv_.evictSequence(req->id));
            pool_.preempt(req->id, /*recompute=*/true);
            out.preemptedNow.push_back(req);
            out.faultPreemptedNow.push_back(req);
            ++preemptStats_.preemptions;
            ++preemptStats_.faultPreemptions;
        }
        preemptStats_.kvPagesLost += static_cast<std::uint64_t>(
            kv_.failChannel(ch));
        ++preemptStats_.channelsFailed;
    }
}

void
BatchScheduler::shedOverload(IterationSchedule &out)
{
    if (!cfg_.shed.enabled() || pool_.waitingCount() == 0)
        return;
    auto tripped = [this]() -> bool {
        if (pool_.waitingCount() == 0)
            return false;
        if (cfg_.shed.maxWaitCycles > 0) {
            // waiting_ is arrival-ordered: the head waited longest.
            const Request &oldest =
                pool_.request(pool_.waitingHead());
            if (now_ - oldest.arrivalCycle > cfg_.shed.maxWaitCycles)
                return true;
        }
        if (cfg_.shed.kvHeadroom > 0.0) {
            std::int64_t capacity = kv_.liveCapacityPages();
            std::int64_t free_total = 0;
            for (ChannelId ch = 0; ch < cfg_.channels; ++ch)
                free_total += kv_.freePages(ch);
            if (capacity > 0 &&
                static_cast<double>(free_total) <
                    cfg_.shed.kvHeadroom *
                        static_cast<double>(capacity))
                return true;
        }
        return false;
    };
    // Bounded per boundary so overload degrades smoothly: at most a
    // quarter of the queue (at least one) sheds per iteration.
    int cap = static_cast<int>(
        std::max<std::size_t>(1, pool_.waitingCount() / 4));
    while (cap-- > 0 && tripped()) {
        // Shed the request the policy would admit LAST — the stable
        // maximum under admitBefore, ties toward the youngest
        // arrival. Fcfs never prefers, so this is exact drop-tail;
        // class-aware policies shed their lowest effective class.
        const auto &waiting = pool_.waitingIds();
        RequestId victim = waiting.front();
        for (RequestId id : waiting) {
            if (!policy_->admitBefore(pool_.request(id),
                                      pool_.request(victim), now_))
                victim = id;
        }
        pool_.abandon(victim, RequestStatus::Shed);
        out.shedNow.push_back(victim);
        ++preemptStats_.shedRequests;
    }
}

IterationSchedule
BatchScheduler::scheduleIteration(Cycle now)
{
    now_ = now;
    IterationSchedule out;
    const bool preempting = cfg_.preempt.enabled();
    if (cfg_.preempt.mode == PreemptMode::Swap)
        out.swapBytesPerCycle = cfg_.preempt.swapBytesPerCycle();

    // Fault transitions and load shedding happen first: a freshly
    // failed channel's residents leave the running set before loads
    // are computed, and shed requests leave the waiting queue before
    // admission considers them. Both are no-ops when disabled.
    applyFaults(out);
    shedOverload(out);

    // Current channel loads from the already-running batch. Requests
    // still in prefill count with their eventual prompt-length load:
    // placement happened at admission, and Algorithm 2 balances the
    // decode MHA they are about to contribute.
    std::vector<Request *> running = pool_.runningRequests();
    if (fault_ && fault_->enabled() && fault_->offlineCount() > 0) {
        // Residents of browned-out channels keep their pages but sit
        // out the iteration — no decode append, no prefill slice, no
        // load contribution — until the window ends.
        running.erase(
            std::remove_if(running.begin(), running.end(),
                           [this](const Request *req) {
                               return !kv_.channelOnline(
                                   req->channel);
                           }),
            running.end());
    }
    std::vector<double> loads(cfg_.channels, 0.0);
    for (Request *req : running) {
        NEUPIMS_ASSERT(req->channel >= 0);
        loads[req->channel] +=
            estimator_.estimate(req->currentSeqLen());
    }

    // Iteration-level admission: fill the batch while KV room lasts,
    // in the policy's admission order (never-fitting picks are
    // rejected as they surface, not just once per boundary — a
    // fitting pick may hide one). Unrestored evictees hold admission
    // priority — fresh admissions would only churn straight back out
    // under the same pressure.
    while (pool_.preemptedCount() == 0 &&
           pool_.runningCount() < static_cast<std::size_t>(
                                      cfg_.maxBatch) &&
           pool_.waitingCount() > 0) {
        RequestId pick = nextAdmission(out);
        if (pick == kInvalidId)
            break;
        pool_.admitId(pick, cfg_.prefill.enabled());
        Request &req = pool_.request(pick);
        ChannelId ch = pickChannel(req, loads);
        if (ch == kInvalidId) {
            // No channel can host this request's KV: put it back in
            // the waiting queue (at its arrival-ordered position)
            // and stop admitting; the policy re-picks next boundary.
            // Under Fcfs this preserves FIFO order exactly.
            pool_.requeue(pick);
            out.admissionBlockedBy = pick;
            break;
        }
        req.channel = ch;
        if (lazyKvAlloc()) {
            // The bind walks the prefix index: whole pages matching
            // the prompt are taken by reference and prefill starts at
            // the first uncached token (zero compute for the hit).
            int cached =
                kv_.bindSequence(req.id, ch, req.promptTokens);
            if (cached > 0)
                req.skipCachedPrefix(cached);
        } else {
            int cached = 0;
            bool ok = kv_.allocateSequence(req.id, ch,
                                           req.currentSeqLen(),
                                           req.promptTokens, cached);
            NEUPIMS_ASSERT(ok, "KV allocation raced admission check");
            // Legacy admit-means-decode models no prefill compute to
            // skip; the page dedup above still happened.
            if (cached > 0 && req.prefilling())
                req.skipCachedPrefix(cached);
        }
        loads[ch] += estimator_.estimate(req.currentSeqLen());
        running.push_back(&req);
        ++out.admitted;
    }

    if (cfg_.prefill.enabled()) {
        schedulePrefill(out, running);
        // Without piggybacking, a pending prompt pass owns the
        // iteration: decode stalls until the prefill queue drains.
        bool prefill_only =
            !cfg_.prefill.piggyback && !out.prefill.empty();
        if (!prefill_only) {
            for (Request *req : running) {
                if (req->decoding())
                    out.batch.push_back(req);
            }
        }
    } else {
        out.batch = std::move(running);
    }

    if (preempting) {
        auto reserved = resolveMemoryPressure(out, loads);
        restorePreempted(out, loads, reserved);
    }

    out.perChannel = groupByChannel(out.batch, cfg_.channels);
    out.subBatches = partitionSubBatches(out.perChannel);
    if (fault_ && fault_->enabled() && fault_->anySlowdown(now_)) {
        out.channelSlowdowns.assign(
            static_cast<std::size_t>(cfg_.channels), 1.0);
        for (ChannelId ch = 0; ch < cfg_.channels; ++ch)
            out.channelSlowdowns[ch] = fault_->slowdown(ch, now_);
    }
    out.channelLoads = std::move(loads);
    return out;
}

int
BatchScheduler::completeIteration(const IterationSchedule &schedule)
{
    const bool lazy = lazyKvAlloc();
    for (const PrefillSlice &slice : schedule.prefill) {
        slice.req->advancePrefill(slice.tokens);
        if (lazy) {
            // Chunk-granular reservation; resolveMemoryPressure
            // guaranteed the pages at the boundary.
            bool ok = kv_.appendTokens(slice.req->id, slice.tokens);
            NEUPIMS_ASSERT(ok, "prefill KV reservation raced the "
                               "pressure check on request ",
                           slice.req->id);
        }
    }
    for (Request *req : schedule.batch) {
        if (!kv_.appendToken(req->id)) {
            NEUPIMS_ASSERT(!cfg_.preempt.enabled(),
                           "decode KV append raced the pressure "
                           "check on request ",
                           req->id);
            warn("KV channel ", req->channel,
                 " out of pages; request ", req->id,
                 " token not cached (stall modeled as continue)");
        }
    }
    auto retired = pool_.advanceRequests(schedule.batch);
    for (RequestId id : retired)
        kv_.freeSequence(id);
    return static_cast<int>(retired.size());
}

} // namespace neupims::runtime
