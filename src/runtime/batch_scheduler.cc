#include "runtime/batch_scheduler.h"

#include <algorithm>
#include <limits>

#include "common/log.h"

namespace neupims::runtime {

std::vector<std::vector<int>>
seqLensOf(const std::vector<std::vector<Request *>> &per_channel)
{
    std::vector<std::vector<int>> lens(per_channel.size());
    for (std::size_t ch = 0; ch < per_channel.size(); ++ch) {
        lens[ch].reserve(per_channel[ch].size());
        for (const Request *req : per_channel[ch])
            lens[ch].push_back(req->currentSeqLen());
    }
    return lens;
}

std::vector<std::vector<int>>
IterationSchedule::seqLensPerChannel() const
{
    return seqLensOf(perChannel);
}

std::vector<std::vector<int>>
IterationSchedule::seqLensOfSubBatch1() const
{
    return seqLensOf(subBatches.sb1);
}

std::vector<std::vector<int>>
IterationSchedule::seqLensOfSubBatch2() const
{
    return seqLensOf(subBatches.sb2);
}

PreemptMode
preemptModeByName(const std::string &name)
{
    if (name == "off")
        return PreemptMode::Off;
    if (name == "recompute")
        return PreemptMode::Recompute;
    if (name == "swap")
        return PreemptMode::Swap;
    fatal("unknown preemption mode '", name,
          "' (expected off|recompute|swap)");
}

VictimPolicy
victimPolicyByName(const std::string &name)
{
    if (name == "lifo")
        return VictimPolicy::LifoYoungest;
    if (name == "fewest")
        return VictimPolicy::FewestPages;
    if (name == "longest")
        return VictimPolicy::LongestRemaining;
    fatal("unknown victim policy '", name,
          "' (expected lifo|fewest|longest)");
}

const char *
preemptModeName(PreemptMode mode)
{
    switch (mode) {
    case PreemptMode::Off:
        return "off";
    case PreemptMode::Recompute:
        return "recompute";
    case PreemptMode::Swap:
        return "swap";
    }
    return "?";
}

BatchScheduler::BatchScheduler(const SchedulerConfig &cfg,
                               RequestPool &pool, PagedKvCache &kv)
    : cfg_(cfg), pool_(pool), kv_(kv), estimator_(cfg.estimator)
{
    NEUPIMS_ASSERT(cfg_.channels >= 1 && cfg_.maxBatch >= 1);
    NEUPIMS_ASSERT(cfg_.prefill.policy != PrefillPolicy::Chunked ||
                       cfg_.prefill.chunkTokens >= 1,
                   "chunked prefill needs a positive token budget");
    NEUPIMS_ASSERT(cfg_.preempt.mode != PreemptMode::Recompute ||
                       cfg_.prefill.enabled(),
                   "recompute preemption restores through the prefill "
                   "path and needs a prefill policy");
    NEUPIMS_ASSERT(!cfg_.preempt.enabled() ||
                       !cfg_.prefill.enabled() ||
                       cfg_.prefill.piggyback,
                   "preemption requires piggybacked prefill: "
                   "stall-the-world prefill-only iterations exclude "
                   "decode page-holders from the schedule, so an old "
                   "decode resident could never progress nor be "
                   "evicted by a younger prefilling demander — "
                   "deadlock");
    NEUPIMS_ASSERT(cfg_.preempt.mode != PreemptMode::Swap ||
                       cfg_.preempt.swapGBps > 0,
                   "swap preemption needs a positive host link rate");
}

bool
BatchScheduler::lazyKvAlloc() const
{
    // Chunk-by-chunk reservation makes mid-prefill preemption
    // meaningful; it is tied to preemption so PreemptMode::Off keeps
    // the legacy whole-prompt-at-admission accounting bit-for-bit.
    return cfg_.preempt.enabled() && cfg_.prefill.enabled();
}

int
BatchScheduler::admissionTokens(const Request &req) const
{
    if (!lazyKvAlloc())
        return req.currentSeqLen();
    // Admission only secures the first prefill chunk's pages; later
    // chunks reserve as their slices land (or preempt a victim).
    int remaining = req.remainingPrefill();
    if (cfg_.prefill.policy == PrefillPolicy::Chunked)
        remaining = std::min(remaining, cfg_.prefill.chunkTokens);
    return std::max(1, remaining);
}

ChannelId
BatchScheduler::pickChannel(const Request &req,
                            std::vector<double> &loads)
{
    int tokens = lazyKvAlloc() ? admissionTokens(req)
                               : req.currentSeqLen();
    if (cfg_.minLoadPacking) {
        // Min-load channel among those with KV room.
        ChannelId best = kInvalidId;
        for (ChannelId ch = 0; ch < cfg_.channels; ++ch) {
            if (!kv_.canAllocate(ch, tokens))
                continue;
            if (best == kInvalidId || loads[ch] < loads[best])
                best = ch;
        }
        return best;
    }
    // Round-robin: first channel with room, starting at the cursor.
    for (int probe = 0; probe < cfg_.channels; ++probe) {
        ChannelId ch = (rrCursor_ + probe) % cfg_.channels;
        if (kv_.canAllocate(ch, tokens)) {
            rrCursor_ = (ch + 1) % cfg_.channels;
            return ch;
        }
    }
    return kInvalidId;
}

ChannelId
BatchScheduler::pickChannelWithPages(
    std::int64_t pages, const std::vector<double> &loads,
    const std::vector<std::int64_t> &reserved)
{
    auto room = [&](ChannelId ch) {
        return kv_.freePages(ch) - reserved[ch] >= pages;
    };
    if (cfg_.minLoadPacking) {
        ChannelId best = kInvalidId;
        for (ChannelId ch = 0; ch < cfg_.channels; ++ch) {
            if (!room(ch))
                continue;
            if (best == kInvalidId || loads[ch] < loads[best])
                best = ch;
        }
        return best;
    }
    for (int probe = 0; probe < cfg_.channels; ++probe) {
        ChannelId ch = (rrCursor_ + probe) % cfg_.channels;
        if (room(ch)) {
            rrCursor_ = (ch + 1) % cfg_.channels;
            return ch;
        }
    }
    return kInvalidId;
}

void
BatchScheduler::dropNeverFitting(IterationSchedule &out)
{
    // A sequence eventually holds prompt + output tokens on a single
    // channel. A head that exceeds that bound can never complete —
    // under preemption it would evict the whole channel and still not
    // fit, a livelock; reject it instead of stalling admission.
    while (pool_.waitingCount() > 0) {
        const Request &head = pool_.request(pool_.waitingHead());
        std::int64_t worst = kv_.pagesForTokens(head.inputLength +
                                                head.outputLength);
        if (worst <= kv_.config().pagesPerChannel())
            break;
        out.droppedNeverFit.push_back(pool_.dropWaitingHead());
        ++preemptStats_.neverFitDrops;
    }
}

void
BatchScheduler::restorePreempted(IterationSchedule &out,
                                 std::vector<double> &loads,
                                 std::vector<std::int64_t> reserved)
{
    // Runs after resolveMemoryPressure, so restores only consume
    // pages the scheduled work left over: a restored request joins
    // the batch at the NEXT boundary (its transfer occupies this
    // iteration) and cannot be churned right back out by this
    // iteration's own demands.
    const bool recompute = cfg_.preempt.mode == PreemptMode::Recompute;
    while (pool_.preemptedCount() > 0 &&
           pool_.runningCount() <
               static_cast<std::size_t>(cfg_.maxBatch)) {
        // Strict FIFO: the oldest eviction restores first; a blocked
        // head blocks the queue (no overtaking, bounded starvation).
        Request *req = pool_.preemptedRequests().front();
        // Never bounce a victim of this very boundary straight back
        // in (it would ride its own freed pages out and back, pure
        // transfer churn); FIFO means everything behind it is just as
        // fresh, so stop.
        bool evicted_now = false;
        for (const Request *p : out.preemptedNow)
            evicted_now = evicted_now || p == req;
        if (evicted_now)
            break;
        if (recompute) {
            std::int64_t pages =
                kv_.pagesForTokens(admissionTokens(*req));
            ChannelId ch =
                pickChannelWithPages(pages, loads, reserved);
            if (ch == kInvalidId)
                break;
            req->channel = ch;
            kv_.bindSequence(req->id, ch);
            // bindSequence takes no pages yet — the first chunk
            // reserves at the next boundary. Count it against later
            // restores now, or every FIFO entry would see the same
            // room and pile onto one channel.
            reserved[ch] += pages;
        } else {
            std::int64_t pages = kv_.hostPagesOf(req->id);
            ChannelId ch =
                pickChannelWithPages(pages, loads, reserved);
            if (ch == kInvalidId)
                break;
            Bytes bytes = kv_.swapIn(req->id, ch);
            req->channel = ch;
            out.swapInBytes += bytes;
            preemptStats_.swapInBytes += bytes;
        }
        pool_.restore(req->id);
        loads[req->channel] +=
            estimator_.estimate(req->currentSeqLen());
        out.restoredNow.push_back(req);
        ++preemptStats_.restores;
    }
}

std::vector<std::int64_t>
BatchScheduler::resolveMemoryPressure(IterationSchedule &out,
                                      std::vector<double> &loads)
{
    std::vector<std::int64_t> reservedPerChannel(
        static_cast<std::size_t>(cfg_.channels), 0);
    const bool recompute = cfg_.preempt.mode == PreemptMode::Recompute;
    const bool lazy = lazyKvAlloc();

    // One page-demanding unit of this schedule: a decode append (one
    // token) or a prefill slice (chunk growth). Resolved oldest-first
    // (ascending RequestId == submission order): a demander may only
    // evict strictly younger requests, so the oldest request in the
    // system always makes progress and preemption cannot livelock —
    // the same age-priority rule vLLM's scheduler uses. A demander
    // that cannot be satisfied even after evicting every younger
    // resident stalls for this iteration (its work is removed; it
    // keeps its pages) instead of churning.
    struct Demand
    {
        Request *req;
        int tokens; ///< KV growth this iteration
    };
    std::vector<std::vector<Demand>> demands(
        static_cast<std::size_t>(cfg_.channels));
    for (Request *req : out.batch)
        demands[req->channel].push_back(Demand{req, 1});
    if (lazy) {
        for (const PrefillSlice &slice : out.prefill)
            demands[slice.req->channel].push_back(
                Demand{slice.req, slice.tokens});
    }

    auto drop_work = [&](Request *req) {
        out.batch.erase(
            std::remove(out.batch.begin(), out.batch.end(), req),
            out.batch.end());
        out.prefill.erase(
            std::remove_if(out.prefill.begin(), out.prefill.end(),
                           [req](const PrefillSlice &slice) {
                               return slice.req == req;
                           }),
            out.prefill.end());
    };

    auto pick_victim = [&](ChannelId ch,
                           RequestId older_than) -> Request * {
        // Candidates: strictly younger residents of the channel that
        // hold pages (evicting a page-less request frees nothing;
        // its own demands are resolved on its own turn).
        std::vector<Request *> cands;
        for (Request *req : pool_.runningRequests()) {
            if (req->channel != ch || req->id <= older_than)
                continue;
            if (kv_.pagesOf(req->id) <= 0)
                continue;
            cands.push_back(req);
        }
        if (cands.empty())
            return nullptr;
        // cands is in running (admission) order: back() == youngest.
        // Ties below resolve toward the youngest as well.
        Request *victim = cands.back();
        if (cfg_.preempt.victim == VictimPolicy::FewestPages) {
            victim = cands.front();
            for (Request *req : cands) {
                if (kv_.pagesOf(req->id) <= kv_.pagesOf(victim->id))
                    victim = req;
            }
        } else if (cfg_.preempt.victim ==
                   VictimPolicy::LongestRemaining) {
            auto remaining = [](const Request *req) {
                return req->remainingPrefill() + req->outputLength -
                       req->generatedTokens;
            };
            victim = cands.front();
            for (Request *req : cands) {
                if (remaining(req) >= remaining(victim))
                    victim = req;
            }
        }
        return victim;
    };

    auto preempt_victim = [&](Request *victim,
                              std::vector<Demand> &channel_demands) {
        drop_work(victim);
        channel_demands.erase(
            std::remove_if(channel_demands.begin(),
                           channel_demands.end(),
                           [victim](const Demand &d) {
                               return d.req == victim;
                           }),
            channel_demands.end());
        loads[victim->channel] -=
            estimator_.estimate(victim->currentSeqLen());
        if (recompute) {
            preemptStats_.pagesFreed += static_cast<std::uint64_t>(
                kv_.evictSequence(victim->id));
        } else {
            Bytes bytes = kv_.swapOut(victim->id);
            out.swapOutBytes += bytes;
            preemptStats_.swapOutBytes += bytes;
        }
        pool_.preempt(victim->id, recompute);
        out.preemptedNow.push_back(victim);
        ++preemptStats_.preemptions;
    };

    for (ChannelId ch = 0; ch < cfg_.channels; ++ch) {
        auto &chd = demands[ch];
        std::sort(chd.begin(), chd.end(),
                  [](const Demand &a, const Demand &b) {
                      return a.req->id < b.req->id;
                  });
        std::int64_t reserved = 0; // pages granted to older demanders
        for (std::size_t i = 0; i < chd.size(); ++i) {
            // Every entry reached here is live: preempt_victim erases
            // a victim's entries, and victims sort strictly after the
            // current demander, so erasures never touch positions
            // already consumed (a stalled demander keeps its entry,
            // but it was consumed on its own turn).
            Request *req = chd[i].req;
            std::int64_t need =
                kv_.pagesForAppend(req->id, chd[i].tokens);
            while (need > kv_.freePages(ch) - reserved) {
                Request *victim = pick_victim(ch, req->id);
                if (!victim) {
                    drop_work(req); // stall: keep pages, skip a turn
                    need = -1;
                    break;
                }
                preempt_victim(victim, chd);
            }
            if (need >= 0)
                reserved += need;
        }
        reservedPerChannel[ch] = reserved;
    }
    return reservedPerChannel;
}

void
BatchScheduler::schedulePrefill(
    IterationSchedule &out, const std::vector<Request *> &running)
{
    // FIFO by submission age: earlier prompts finish their prefill
    // first, bounding TTFT head-of-line effects. Without preemption
    // the running set is already age-ordered, so this is exactly the
    // admission order; with it, restores re-enter at the back of the
    // running order and MUST NOT lose their budget priority — the
    // pressure resolver only lets a request evict strictly younger
    // victims, so handing the token budget to a younger request that
    // cannot take pages from older residents would deadlock them
    // against each other.
    std::vector<Request *> by_age(running.begin(), running.end());
    std::sort(by_age.begin(), by_age.end(),
              [](const Request *a, const Request *b) {
                  return a->id < b->id;
              });
    int budget = cfg_.prefill.policy == PrefillPolicy::Chunked
                     ? cfg_.prefill.chunkTokens
                     : std::numeric_limits<int>::max();
    for (Request *req : by_age) {
        if (!req->prefilling())
            continue;
        if (budget <= 0)
            break;
        int tokens = std::min(req->remainingPrefill(), budget);
        NEUPIMS_ASSERT(tokens >= 1);
        out.prefill.push_back(
            PrefillSlice{req, req->prefilledTokens, tokens});
        budget -= tokens;
    }
}

IterationSchedule
BatchScheduler::scheduleIteration()
{
    IterationSchedule out;
    const bool preempting = cfg_.preempt.enabled();
    if (cfg_.preempt.mode == PreemptMode::Swap)
        out.swapBytesPerCycle = cfg_.preempt.swapBytesPerCycle();

    // Current channel loads from the already-running batch. Requests
    // still in prefill count with their eventual prompt-length load:
    // placement happened at admission, and Algorithm 2 balances the
    // decode MHA they are about to contribute.
    std::vector<double> loads(cfg_.channels, 0.0);
    std::vector<Request *> running = pool_.runningRequests();
    for (Request *req : running) {
        NEUPIMS_ASSERT(req->channel >= 0);
        loads[req->channel] +=
            estimator_.estimate(req->currentSeqLen());
    }

    // Iteration-level admission: fill the batch while KV room lasts.
    // Unrestored evictees hold admission priority — fresh admissions
    // would only churn straight back out under the same pressure.
    while (pool_.preemptedCount() == 0 &&
           pool_.runningCount() < static_cast<std::size_t>(
                                      cfg_.maxBatch) &&
           pool_.waitingCount() > 0) {
        if (preempting) {
            // Reject never-fitting heads as they surface, not just
            // once per boundary — a fitting head may hide one.
            dropNeverFitting(out);
            if (pool_.waitingCount() == 0)
                break;
        }
        auto admitted = pool_.admit(1, cfg_.prefill.enabled());
        NEUPIMS_ASSERT(admitted.size() == 1);
        Request &req = pool_.request(admitted[0]);
        ChannelId ch = pickChannel(req, loads);
        if (ch == kInvalidId) {
            // No channel can host this request's KV: put it back and
            // stop admitting (FIFO order preserved).
            pool_.requeue(admitted[0]);
            break;
        }
        req.channel = ch;
        if (lazyKvAlloc()) {
            kv_.bindSequence(req.id, ch);
        } else {
            bool ok =
                kv_.allocateSequence(req.id, ch, req.currentSeqLen());
            NEUPIMS_ASSERT(ok, "KV allocation raced admission check");
        }
        loads[ch] += estimator_.estimate(req.currentSeqLen());
        running.push_back(&req);
        ++out.admitted;
    }

    if (cfg_.prefill.enabled()) {
        schedulePrefill(out, running);
        // Without piggybacking, a pending prompt pass owns the
        // iteration: decode stalls until the prefill queue drains.
        bool prefill_only =
            !cfg_.prefill.piggyback && !out.prefill.empty();
        if (!prefill_only) {
            for (Request *req : running) {
                if (req->decoding())
                    out.batch.push_back(req);
            }
        }
    } else {
        out.batch = std::move(running);
    }

    if (preempting) {
        auto reserved = resolveMemoryPressure(out, loads);
        restorePreempted(out, loads, reserved);
    }

    out.perChannel = groupByChannel(out.batch, cfg_.channels);
    out.subBatches = partitionSubBatches(out.perChannel);
    out.channelLoads = std::move(loads);
    return out;
}

int
BatchScheduler::completeIteration(const IterationSchedule &schedule)
{
    const bool lazy = lazyKvAlloc();
    for (const PrefillSlice &slice : schedule.prefill) {
        slice.req->advancePrefill(slice.tokens);
        if (lazy) {
            // Chunk-granular reservation; resolveMemoryPressure
            // guaranteed the pages at the boundary.
            bool ok = kv_.appendTokens(slice.req->id, slice.tokens);
            NEUPIMS_ASSERT(ok, "prefill KV reservation raced the "
                               "pressure check on request ",
                           slice.req->id);
        }
    }
    for (Request *req : schedule.batch) {
        if (!kv_.appendToken(req->id)) {
            NEUPIMS_ASSERT(!cfg_.preempt.enabled(),
                           "decode KV append raced the pressure "
                           "check on request ",
                           req->id);
            warn("KV channel ", req->channel,
                 " out of pages; request ", req->id,
                 " token not cached (stall modeled as continue)");
        }
    }
    auto retired = pool_.advanceRequests(schedule.batch);
    for (RequestId id : retired)
        kv_.freeSequence(id);
    return static_cast<int>(retired.size());
}

} // namespace neupims::runtime
