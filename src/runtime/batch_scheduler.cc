#include "runtime/batch_scheduler.h"

#include <algorithm>
#include <limits>

#include "common/log.h"

namespace neupims::runtime {

std::vector<std::vector<int>>
seqLensOf(const std::vector<std::vector<Request *>> &per_channel)
{
    std::vector<std::vector<int>> lens(per_channel.size());
    for (std::size_t ch = 0; ch < per_channel.size(); ++ch) {
        lens[ch].reserve(per_channel[ch].size());
        for (const Request *req : per_channel[ch])
            lens[ch].push_back(req->currentSeqLen());
    }
    return lens;
}

std::vector<std::vector<int>>
IterationSchedule::seqLensPerChannel() const
{
    return seqLensOf(perChannel);
}

std::vector<std::vector<int>>
IterationSchedule::seqLensOfSubBatch1() const
{
    return seqLensOf(subBatches.sb1);
}

std::vector<std::vector<int>>
IterationSchedule::seqLensOfSubBatch2() const
{
    return seqLensOf(subBatches.sb2);
}

BatchScheduler::BatchScheduler(const SchedulerConfig &cfg,
                               RequestPool &pool, PagedKvCache &kv)
    : cfg_(cfg), pool_(pool), kv_(kv), estimator_(cfg.estimator)
{
    NEUPIMS_ASSERT(cfg_.channels >= 1 && cfg_.maxBatch >= 1);
    NEUPIMS_ASSERT(cfg_.prefill.policy != PrefillPolicy::Chunked ||
                       cfg_.prefill.chunkTokens >= 1,
                   "chunked prefill needs a positive token budget");
}

ChannelId
BatchScheduler::pickChannel(const Request &req,
                            std::vector<double> &loads)
{
    int tokens = req.currentSeqLen();
    if (cfg_.minLoadPacking) {
        // Min-load channel among those with KV room.
        ChannelId best = kInvalidId;
        for (ChannelId ch = 0; ch < cfg_.channels; ++ch) {
            if (!kv_.canAllocate(ch, tokens))
                continue;
            if (best == kInvalidId || loads[ch] < loads[best])
                best = ch;
        }
        return best;
    }
    // Round-robin: first channel with room, starting at the cursor.
    for (int probe = 0; probe < cfg_.channels; ++probe) {
        ChannelId ch = (rrCursor_ + probe) % cfg_.channels;
        if (kv_.canAllocate(ch, tokens)) {
            rrCursor_ = (ch + 1) % cfg_.channels;
            return ch;
        }
    }
    return kInvalidId;
}

void
BatchScheduler::schedulePrefill(
    IterationSchedule &out, const std::vector<Request *> &running)
{
    // FIFO over the running set (admission order): earlier prompts
    // finish their prefill first, bounding TTFT head-of-line effects.
    int budget = cfg_.prefill.policy == PrefillPolicy::Chunked
                     ? cfg_.prefill.chunkTokens
                     : std::numeric_limits<int>::max();
    for (Request *req : running) {
        if (!req->prefilling())
            continue;
        if (budget <= 0)
            break;
        int tokens = std::min(req->remainingPrefill(), budget);
        NEUPIMS_ASSERT(tokens >= 1);
        out.prefill.push_back(
            PrefillSlice{req, req->prefilledTokens, tokens});
        budget -= tokens;
    }
}

IterationSchedule
BatchScheduler::scheduleIteration()
{
    IterationSchedule out;

    // Current channel loads from the already-running batch. Requests
    // still in prefill count with their eventual prompt-length load:
    // placement happened at admission, and Algorithm 2 balances the
    // decode MHA they are about to contribute.
    std::vector<double> loads(cfg_.channels, 0.0);
    std::vector<Request *> running = pool_.runningRequests();
    for (Request *req : running) {
        NEUPIMS_ASSERT(req->channel >= 0);
        loads[req->channel] +=
            estimator_.estimate(req->currentSeqLen());
    }

    // Iteration-level admission: fill the batch while KV room lasts.
    while (pool_.runningCount() < static_cast<std::size_t>(
                                      cfg_.maxBatch) &&
           pool_.waitingCount() > 0) {
        auto admitted = pool_.admit(1, cfg_.prefill.enabled());
        NEUPIMS_ASSERT(admitted.size() == 1);
        Request &req = pool_.request(admitted[0]);
        ChannelId ch = pickChannel(req, loads);
        if (ch == kInvalidId) {
            // No channel can host this request's KV: put it back and
            // stop admitting (FIFO order preserved).
            pool_.requeue(admitted[0]);
            break;
        }
        req.channel = ch;
        bool ok = kv_.allocateSequence(req.id, ch, req.currentSeqLen());
        NEUPIMS_ASSERT(ok, "KV allocation raced admission check");
        loads[ch] += estimator_.estimate(req.currentSeqLen());
        running.push_back(&req);
        ++out.admitted;
    }

    if (cfg_.prefill.enabled()) {
        schedulePrefill(out, running);
        // Without piggybacking, a pending prompt pass owns the
        // iteration: decode stalls until the prefill queue drains.
        bool prefill_only =
            !cfg_.prefill.piggyback && !out.prefill.empty();
        if (!prefill_only) {
            for (Request *req : running) {
                if (req->decoding())
                    out.batch.push_back(req);
            }
        }
    } else {
        out.batch = std::move(running);
    }

    out.perChannel = groupByChannel(out.batch, cfg_.channels);
    out.subBatches = partitionSubBatches(out.perChannel);
    out.channelLoads = std::move(loads);
    return out;
}

int
BatchScheduler::completeIteration(const IterationSchedule &schedule)
{
    for (const PrefillSlice &slice : schedule.prefill)
        slice.req->advancePrefill(slice.tokens);
    for (Request *req : schedule.batch) {
        if (!kv_.appendToken(req->id)) {
            warn("KV channel ", req->channel,
                 " out of pages; request ", req->id,
                 " token not cached (stall modeled as continue)");
        }
    }
    auto retired = pool_.advanceRequests(schedule.batch);
    for (RequestId id : retired)
        kv_.freeSequence(id);
    return static_cast<int>(retired.size());
}

} // namespace neupims::runtime
