/**
 * @file
 * Synthetic ShareGPT / Alpaca workload generators (paper §8.1).
 *
 * Substitution note (see DESIGN.md): we do not ship the datasets; the
 * simulator consumes only input/output sequence-length distributions,
 * which we synthesize as lognormals calibrated to the paper's
 * published means — ShareGPT: 80 input / 296 output tokens; Alpaca:
 * 12 / 56. Like the paper's methodology, batches are "warmed": each
 * sampled request is part-way through its generation so a batch mixes
 * short and long KV histories.
 */

#ifndef NEUPIMS_RUNTIME_WORKLOAD_H_
#define NEUPIMS_RUNTIME_WORKLOAD_H_

#include <string>
#include <vector>

#include "common/rng.h"

namespace neupims::runtime {

struct SequenceSample
{
    int inputLength = 1;
    int outputLength = 1;
    int generatedTokens = 0; ///< warm-batch progress (< outputLength)
};

struct DatasetConfig
{
    std::string name;
    double inputMean = 80.0;
    double outputMean = 296.0;
    double inputSigma = 0.9; ///< sigma of ln(length)
    double outputSigma = 0.9;
    int maxLength = 4096; ///< clamp, keeps KV within device capacity
};

DatasetConfig shareGptDataset();
DatasetConfig alpacaDataset();

class WorkloadGenerator
{
  public:
    WorkloadGenerator(const DatasetConfig &cfg, std::uint64_t seed);

    const DatasetConfig &config() const { return cfg_; }

    /** Sample one request's input/output lengths (cold: progress 0). */
    SequenceSample sample();

    /**
     * Sample a warm batch: every request is somewhere inside its
     * generation phase (uniform progress), as produced by the paper's
     * warm-up methodology.
     */
    std::vector<SequenceSample> warmBatch(int batch_size);

  private:
    int sampleLength(double mean, double sigma);

    DatasetConfig cfg_;
    Rng rng_;
};

} // namespace neupims::runtime

#endif // NEUPIMS_RUNTIME_WORKLOAD_H_
