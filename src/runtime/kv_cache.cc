#include "runtime/kv_cache.h"

#include "common/log.h"

namespace neupims::runtime {

PagedKvCache::PagedKvCache(const KvCacheConfig &cfg) : cfg_(cfg)
{
    NEUPIMS_ASSERT(cfg_.channels >= 1);
    NEUPIMS_ASSERT(cfg_.tokensPerPage >= 1);
    NEUPIMS_ASSERT(cfg_.bytesPerTokenPerLayer >= 1,
                   "KV bytes per token must be configured");
    freePages_.assign(cfg_.channels, cfg_.pagesPerChannel());
    online_.assign(static_cast<std::size_t>(cfg_.channels), 1);
    failed_.assign(static_cast<std::size_t>(cfg_.channels), 0);
}

bool
PagedKvCache::channelOnline(ChannelId channel) const
{
    NEUPIMS_ASSERT(channel >= 0 && channel < cfg_.channels);
    return online_[channel] != 0;
}

void
PagedKvCache::setChannelOnline(ChannelId channel, bool online)
{
    NEUPIMS_ASSERT(channel >= 0 && channel < cfg_.channels);
    if (failed_[channel])
        return; // failure is forever
    online_[channel] = online ? 1 : 0;
}

std::int64_t
PagedKvCache::failChannel(ChannelId channel)
{
    NEUPIMS_ASSERT(channel >= 0 && channel < cfg_.channels);
    NEUPIMS_ASSERT(!failed_[channel],
                   "channel ", channel, " already failed");
    for (const auto &entry : sequences_) {
        NEUPIMS_ASSERT(entry.second.swapped ||
                           entry.second.channel != channel,
                       "failing channel ", channel,
                       " with resident sequence ", entry.first,
                       " — evict residents first");
    }
    failed_[channel] = 1;
    online_[channel] = 0;
    std::int64_t lost = freePages_[channel];
    freePages_[channel] = 0;
    return lost;
}

int
PagedKvCache::liveChannels() const
{
    int n = 0;
    for (std::uint8_t f : failed_)
        n += f ? 0 : 1;
    return n;
}

std::int64_t
PagedKvCache::liveCapacityPages() const
{
    return cfg_.pagesPerChannel() *
           static_cast<std::int64_t>(liveChannels());
}

std::int64_t
PagedKvCache::freePages(ChannelId channel) const
{
    NEUPIMS_ASSERT(channel >= 0 && channel < cfg_.channels);
    return freePages_[channel];
}

std::int64_t
PagedKvCache::pagesForTokens(int tokens) const
{
    return (static_cast<std::int64_t>(tokens) + cfg_.tokensPerPage - 1) /
           cfg_.tokensPerPage;
}

bool
PagedKvCache::canAllocate(ChannelId channel, int tokens) const
{
    return channelOnline(channel) &&
           freePages(channel) >= pagesForTokens(tokens);
}

bool
PagedKvCache::allocateSequence(RequestId id, ChannelId channel,
                               int tokens)
{
    NEUPIMS_ASSERT(sequences_.find(id) == sequences_.end(),
                   "request already has a KV sequence: ", id);
    std::int64_t need = pagesForTokens(tokens);
    if (freePages(channel) < need)
        return false;
    freePages_[channel] -= need;
    sequences_[id] = Sequence{channel, tokens, need};
    return true;
}

void
PagedKvCache::bindSequence(RequestId id, ChannelId channel)
{
    NEUPIMS_ASSERT(sequences_.find(id) == sequences_.end(),
                   "request already has a KV sequence: ", id);
    NEUPIMS_ASSERT(channel >= 0 && channel < cfg_.channels);
    NEUPIMS_ASSERT(channelOnline(channel),
                   "binding sequence to offline channel ", channel);
    sequences_[id] = Sequence{channel, 0, 0, false};
}

bool
PagedKvCache::appendToken(RequestId id)
{
    auto it = sequences_.find(id);
    NEUPIMS_ASSERT(it != sequences_.end(), "unknown request: ", id);
    Sequence &seq = it->second;
    NEUPIMS_ASSERT(!seq.swapped, "appending to swapped-out request ",
                   id);
    std::int64_t need = pagesForTokens(seq.tokens + 1);
    if (need > seq.pages) {
        if (freePages_[seq.channel] == 0)
            return false;
        --freePages_[seq.channel];
        seq.pages = need;
    }
    ++seq.tokens;
    return true;
}

bool
PagedKvCache::appendTokens(RequestId id, int tokens)
{
    NEUPIMS_ASSERT(tokens >= 1);
    auto it = sequences_.find(id);
    NEUPIMS_ASSERT(it != sequences_.end(), "unknown request: ", id);
    Sequence &seq = it->second;
    NEUPIMS_ASSERT(!seq.swapped, "appending to swapped-out request ",
                   id);
    std::int64_t need = pagesForTokens(seq.tokens + tokens) - seq.pages;
    if (need > freePages_[seq.channel])
        return false;
    freePages_[seq.channel] -= need;
    seq.pages += need;
    seq.tokens += tokens;
    return true;
}

std::int64_t
PagedKvCache::pagesForAppend(RequestId id, int tokens) const
{
    auto it = sequences_.find(id);
    NEUPIMS_ASSERT(it != sequences_.end(), "unknown request: ", id);
    const Sequence &seq = it->second;
    return pagesForTokens(seq.tokens + tokens) - seq.pages;
}

void
PagedKvCache::freeSequence(RequestId id)
{
    auto it = sequences_.find(id);
    if (it == sequences_.end())
        return;
    if (it->second.swapped)
        hostPages_ -= it->second.pages;
    else
        freePages_[it->second.channel] += it->second.pages;
    sequences_.erase(it);
}

std::int64_t
PagedKvCache::evictSequence(RequestId id)
{
    auto it = sequences_.find(id);
    NEUPIMS_ASSERT(it != sequences_.end(), "unknown request: ", id);
    NEUPIMS_ASSERT(!it->second.swapped,
                   "evicting swapped-out request ", id);
    std::int64_t pages = it->second.pages;
    freePages_[it->second.channel] += pages;
    sequences_.erase(it);
    return pages;
}

Bytes
PagedKvCache::swapOut(RequestId id)
{
    auto it = sequences_.find(id);
    NEUPIMS_ASSERT(it != sequences_.end(), "unknown request: ", id);
    Sequence &seq = it->second;
    NEUPIMS_ASSERT(!seq.swapped, "double swap-out of request ", id);
    freePages_[seq.channel] += seq.pages;
    hostPages_ += seq.pages;
    seq.swapped = true;
    seq.channel = kInvalidId;
    return static_cast<Bytes>(seq.pages) * cfg_.pageBytes();
}

Bytes
PagedKvCache::swapIn(RequestId id, ChannelId channel)
{
    auto it = sequences_.find(id);
    NEUPIMS_ASSERT(it != sequences_.end(), "unknown request: ", id);
    Sequence &seq = it->second;
    NEUPIMS_ASSERT(seq.swapped, "swap-in of device-resident request ",
                   id);
    if (!channelOnline(channel) || freePages(channel) < seq.pages)
        return 0;
    freePages_[channel] -= seq.pages;
    hostPages_ -= seq.pages;
    seq.swapped = false;
    seq.channel = channel;
    return static_cast<Bytes>(seq.pages) * cfg_.pageBytes();
}

bool
PagedKvCache::isSwappedOut(RequestId id) const
{
    auto it = sequences_.find(id);
    return it != sequences_.end() && it->second.swapped;
}

std::int64_t
PagedKvCache::hostPagesOf(RequestId id) const
{
    auto it = sequences_.find(id);
    if (it == sequences_.end() || !it->second.swapped)
        return 0;
    return it->second.pages;
}

std::int64_t
PagedKvCache::pagesOf(RequestId id) const
{
    auto it = sequences_.find(id);
    if (it == sequences_.end() || it->second.swapped)
        return 0;
    return it->second.pages;
}

std::int64_t
PagedKvCache::usedPages(ChannelId channel) const
{
    if (failed_[channel])
        return 0; // lost capacity is neither free nor in use
    return cfg_.pagesPerChannel() - freePages(channel);
}

double
PagedKvCache::utilization() const
{
    // Failed channels leave the denominator (their pages are lost,
    // not busy); with no faults this is the full device as before.
    double total = static_cast<double>(liveCapacityPages());
    if (total == 0.0)
        return 0.0;
    double free_total = 0.0;
    for (auto f : freePages_)
        free_total += static_cast<double>(f);
    return 1.0 - free_total / total;
}

ChannelId
PagedKvCache::channelOf(RequestId id) const
{
    auto it = sequences_.find(id);
    return it == sequences_.end() ? kInvalidId : it->second.channel;
}

int
PagedKvCache::tokensOf(RequestId id) const
{
    auto it = sequences_.find(id);
    return it == sequences_.end() ? 0 : it->second.tokens;
}

} // namespace neupims::runtime
