#include "runtime/kv_cache.h"

#include <algorithm>

#include "common/log.h"

namespace neupims::runtime {

namespace {

/** FNV-1a over the page's token ids (scan shortcut, not identity —
 * content is always compared before a node matches). */
std::uint64_t
hashTokens(const std::int32_t *tokens, int n)
{
    std::uint64_t h = 1469598103934665603ULL;
    for (int i = 0; i < n; ++i) {
        std::uint64_t v = static_cast<std::uint32_t>(tokens[i]);
        for (int b = 0; b < 4; ++b) {
            h ^= (v >> (8 * b)) & 0xffULL;
            h *= 1099511628211ULL;
        }
    }
    return h;
}

} // namespace

PagedKvCache::PagedKvCache(const KvCacheConfig &cfg) : cfg_(cfg)
{
    NEUPIMS_ASSERT(cfg_.channels >= 1);
    NEUPIMS_ASSERT(cfg_.tokensPerPage >= 1);
    NEUPIMS_ASSERT(cfg_.bytesPerTokenPerLayer >= 1,
                   "KV bytes per token must be configured");
    freePages_.assign(cfg_.channels, cfg_.pagesPerChannel());
    online_.assign(static_cast<std::size_t>(cfg_.channels), 1);
    failed_.assign(static_cast<std::size_t>(cfg_.channels), 0);
    rootsByChannel_.assign(static_cast<std::size_t>(cfg_.channels), {});
    nodesByChannel_.assign(static_cast<std::size_t>(cfg_.channels), {});
    cachedByChannel_.assign(static_cast<std::size_t>(cfg_.channels), 0);
}

bool
PagedKvCache::channelOnline(ChannelId channel) const
{
    NEUPIMS_ASSERT(channel >= 0 && channel < cfg_.channels);
    return online_[channel] != 0;
}

void
PagedKvCache::setChannelOnline(ChannelId channel, bool online)
{
    NEUPIMS_ASSERT(channel >= 0 && channel < cfg_.channels);
    if (failed_[channel])
        return; // failure is forever
    online_[channel] = online ? 1 : 0;
}

std::int64_t
PagedKvCache::failChannel(ChannelId channel)
{
    NEUPIMS_ASSERT(channel >= 0 && channel < cfg_.channels);
    NEUPIMS_ASSERT(!failed_[channel],
                   "channel ", channel, " already failed");
    // Pure per-entry assertion: no mutation, no early exit, so the
    // visit order cannot affect any simulation decision.
    // NOLINT-SIM-NEXTLINE(unordered-iter): order-independent per-entry check
    for (const auto &entry : sequences_) {
        NEUPIMS_ASSERT(entry.second.swapped ||
                           entry.second.channel != channel,
                       "failing channel ", channel,
                       " with resident sequence ", entry.first,
                       " — evict residents first");
    }
    // Shared pages drop exactly once: residents were force-evicted
    // (dereferencing their nodes), swapped sequences carried their
    // content to the host, so every node here must be refcount 0.
    for (std::int64_t n : nodesByChannel_[channel]) {
        NEUPIMS_ASSERT(nodes_[n].refcount == 0,
                       "failing channel ", channel,
                       " with referenced shared page");
        freeNodeSlots_.push_back(n);
    }
    std::int64_t lost =
        freePages_[channel] +
        static_cast<std::int64_t>(nodesByChannel_[channel].size());
    nodesByChannel_[channel].clear();
    rootsByChannel_[channel].clear();
    cachedByChannel_[channel] = 0;
    failed_[channel] = 1;
    online_[channel] = 0;
    freePages_[channel] = 0;
    return lost;
}

int
PagedKvCache::liveChannels() const
{
    int n = 0;
    for (std::uint8_t f : failed_)
        n += f ? 0 : 1;
    return n;
}

std::int64_t
PagedKvCache::liveCapacityPages() const
{
    return cfg_.pagesPerChannel() *
           static_cast<std::int64_t>(liveChannels());
}

std::int64_t
PagedKvCache::freePages(ChannelId channel) const
{
    NEUPIMS_ASSERT(channel >= 0 && channel < cfg_.channels);
    return freePages_[channel] +
           (cfg_.prefixSharing ? cachedByChannel_[channel] : 0);
}

std::int64_t
PagedKvCache::pagesForTokens(int tokens) const
{
    return (static_cast<std::int64_t>(tokens) + cfg_.tokensPerPage - 1) /
           cfg_.tokensPerPage;
}

bool
PagedKvCache::canAllocate(ChannelId channel, int tokens) const
{
    return channelOnline(channel) &&
           freePages(channel) >= pagesForTokens(tokens);
}

// --- prefix-index internals ---------------------------------------------

std::int64_t
PagedKvCache::wholeSharedOf(const Sequence &seq) const
{
    return static_cast<std::int64_t>(seq.sharedNodes.size()) -
           (seq.partialTail ? 1 : 0);
}

std::int64_t
PagedKvCache::reclaimablePages(ChannelId channel) const
{
    return cfg_.prefixSharing ? cachedByChannel_[channel] : 0;
}

void
PagedKvCache::takePage(ChannelId channel)
{
    if (freePages_[channel] > 0) {
        --freePages_[channel];
        return;
    }
    // Free list dry: reclaim the least-recently-used cached
    // (refcount-0) index node without children — childless first so
    // a chain unravels from the leaves.
    std::int64_t best = -1;
    for (std::int64_t n : nodesByChannel_[channel]) {
        const PageNode &node = nodes_[n];
        if (node.refcount != 0 || !node.children.empty())
            continue;
        if (best < 0 || node.lastUse < nodes_[best].lastUse)
            best = n;
    }
    NEUPIMS_ASSERT(best >= 0, "takePage on channel ", channel,
                   " with no free or reclaimable page");
    destroyNode(best);
    ++prefixStats_.pagesReclaimed;
    // The reclaimed node's page is the one handed out: no free-list
    // movement.
}

std::int64_t
PagedKvCache::findChild(ChannelId channel, std::int64_t parent,
                        const std::int32_t *tokens) const
{
    const std::vector<std::int64_t> &siblings =
        parent < 0 ? rootsByChannel_[channel]
                   : nodes_[parent].children;
    const std::uint64_t h = hashTokens(tokens, cfg_.tokensPerPage);
    for (std::int64_t c : siblings) {
        const PageNode &node = nodes_[c];
        if (node.hash == h &&
            std::equal(node.tokens.begin(), node.tokens.end(), tokens))
            return c;
    }
    return -1;
}

std::int64_t
PagedKvCache::newNode(ChannelId channel, std::int64_t parent,
                      const std::int32_t *tokens)
{
    std::int64_t id;
    if (!freeNodeSlots_.empty()) {
        id = freeNodeSlots_.back();
        freeNodeSlots_.pop_back();
    } else {
        id = static_cast<std::int64_t>(nodes_.size());
        nodes_.emplace_back();
    }
    PageNode &node = nodes_[id];
    node.channel = channel;
    node.parent = parent;
    node.hash = hashTokens(tokens, cfg_.tokensPerPage);
    node.refcount = 1; // born bound to its publisher
    node.lastUse = ++useTick_;
    node.children.clear();
    node.tokens.assign(tokens, tokens + cfg_.tokensPerPage);
    if (parent < 0)
        rootsByChannel_[channel].push_back(id);
    else
        nodes_[parent].children.push_back(id);
    nodesByChannel_[channel].push_back(id);
    return id;
}

void
PagedKvCache::destroyNode(std::int64_t node)
{
    PageNode &n = nodes_[node];
    NEUPIMS_ASSERT(n.refcount == 0 && n.children.empty(),
                   "destroying a live prefix node");
    std::vector<std::int64_t> &siblings =
        n.parent < 0 ? rootsByChannel_[n.channel]
                     : nodes_[n.parent].children;
    siblings.erase(std::find(siblings.begin(), siblings.end(), node));
    std::vector<std::int64_t> &chan = nodesByChannel_[n.channel];
    chan.erase(std::find(chan.begin(), chan.end(), node));
    --cachedByChannel_[n.channel];
    n.channel = kInvalidId;
    freeNodeSlots_.push_back(node);
}

void
PagedKvCache::incref(std::int64_t node)
{
    PageNode &n = nodes_[node];
    if (n.refcount == 0)
        --cachedByChannel_[n.channel];
    ++n.refcount;
    n.lastUse = ++useTick_;
}

void
PagedKvCache::decref(std::int64_t node)
{
    PageNode &n = nodes_[node];
    NEUPIMS_ASSERT(n.refcount > 0, "double release of shared page");
    if (--n.refcount == 0)
        ++cachedByChannel_[n.channel];
}

void
PagedKvCache::publishFullPages(Sequence &seq)
{
    if (!cfg_.prefixSharing || seq.prompt.empty())
        return;
    const int P = cfg_.tokensPerPage;
    while (!seq.partialTail) {
        std::int64_t w =
            static_cast<std::int64_t>(seq.sharedNodes.size());
        std::int64_t next_end = (w + 1) * P;
        if (next_end > static_cast<std::int64_t>(seq.tokens) ||
            next_end > static_cast<std::int64_t>(seq.prompt.size()))
            break;
        std::int64_t parent = w ? seq.sharedNodes.back() : -1;
        const std::int32_t *slice = seq.prompt.data() + w * P;
        NEUPIMS_ASSERT(seq.pages >= 1,
                       "publishing a page the sequence does not hold");
        std::int64_t existing = findChild(seq.channel, parent, slice);
        if (existing >= 0) {
            // A concurrent sequence published the identical page
            // first: merge — our private copy is redundant.
            incref(existing);
            seq.sharedNodes.push_back(existing);
            --seq.pages;
            ++freePages_[seq.channel];
            ++prefixStats_.pagesDeduped;
        } else {
            std::int64_t n = newNode(seq.channel, parent, slice);
            seq.sharedNodes.push_back(n);
            --seq.pages; // ownership converts private -> shared
            ++prefixStats_.pagesPublished;
        }
    }
}

std::vector<std::int64_t>
PagedKvCache::matchWholePages(ChannelId channel,
                              const std::vector<std::int32_t> &prompt,
                              int maxTokens) const
{
    std::vector<std::int64_t> matched;
    const int P = cfg_.tokensPerPage;
    std::int64_t parent = -1;
    for (int pos = 0; pos + P <= maxTokens; pos += P) {
        std::int64_t c = findChild(channel, parent, prompt.data() + pos);
        if (c < 0)
            break;
        matched.push_back(c);
        parent = c;
    }
    return matched;
}

// --- sequence lifecycle -------------------------------------------------

bool
PagedKvCache::allocateSequence(RequestId id, ChannelId channel,
                               int tokens)
{
    NEUPIMS_ASSERT(sequences_.find(id) == sequences_.end(),
                   "request already has a KV sequence: ", id);
    std::int64_t need = pagesForTokens(tokens);
    if (freePages(channel) < need)
        return false;
    if (cfg_.prefixSharing) {
        for (std::int64_t i = 0; i < need; ++i)
            takePage(channel);
    } else {
        freePages_[channel] -= need;
    }
    Sequence seq;
    seq.channel = channel;
    seq.tokens = tokens;
    seq.pages = need;
    sequences_[id] = std::move(seq);
    return true;
}

bool
PagedKvCache::allocateSequence(RequestId id, ChannelId channel,
                               int tokens,
                               const std::vector<std::int32_t> &promptTokens,
                               int &cachedTokens)
{
    cachedTokens = 0;
    if (!cfg_.prefixSharing || promptTokens.empty())
        return allocateSequence(id, channel, tokens);
    NEUPIMS_ASSERT(sequences_.find(id) == sequences_.end(),
                   "request already has a KV sequence: ", id);
    ++prefixStats_.admissions;
    const int P = cfg_.tokensPerPage;
    // At least one prompt token always prefills (mirrors vLLM
    // recomputing the last token for logits), so a whole-prompt hit
    // still leaves a one-token suffix.
    int cap = std::min(static_cast<int>(promptTokens.size()) - 1,
                       tokens);
    auto matched = matchWholePages(channel, promptTokens, cap);
    std::int64_t m = static_cast<std::int64_t>(matched.size());
    std::int64_t need = pagesForTokens(tokens) - m;
    std::int64_t ref0 = 0;
    for (std::int64_t n : matched)
        ref0 += nodes_[n].refcount == 0 ? 1 : 0;
    if (freePages_[channel] + reclaimablePages(channel) - ref0 < need)
        return false;
    for (std::int64_t n : matched)
        incref(n);
    for (std::int64_t i = 0; i < need; ++i)
        takePage(channel);
    Sequence seq;
    seq.channel = channel;
    seq.tokens = tokens;
    seq.pages = need;
    seq.prompt = promptTokens;
    seq.sharedNodes = std::move(matched);
    cachedTokens = static_cast<int>(m) * P;
    if (cachedTokens > 0) {
        ++prefixStats_.hits;
        prefixStats_.tokensDeduped +=
            static_cast<std::uint64_t>(cachedTokens);
        prefixStats_.pagesDeduped += static_cast<std::uint64_t>(m);
    }
    auto &stored = sequences_[id] = std::move(seq);
    publishFullPages(stored);
    return true;
}

void
PagedKvCache::bindSequence(RequestId id, ChannelId channel)
{
    NEUPIMS_ASSERT(sequences_.find(id) == sequences_.end(),
                   "request already has a KV sequence: ", id);
    NEUPIMS_ASSERT(channel >= 0 && channel < cfg_.channels);
    NEUPIMS_ASSERT(channelOnline(channel),
                   "binding sequence to offline channel ", channel);
    Sequence seq;
    seq.channel = channel;
    sequences_[id] = std::move(seq);
}

int
PagedKvCache::bindSequence(RequestId id, ChannelId channel,
                           const std::vector<std::int32_t> &promptTokens)
{
    bindSequence(id, channel);
    if (!cfg_.prefixSharing || promptTokens.empty())
        return 0;
    ++prefixStats_.admissions;
    Sequence &seq = sequences_[id];
    seq.prompt = promptTokens;
    const int P = cfg_.tokensPerPage;
    const int cap = static_cast<int>(promptTokens.size()) - 1;
    seq.sharedNodes = matchWholePages(channel, promptTokens, cap);
    for (std::int64_t n : seq.sharedNodes)
        incref(n);
    int pos = static_cast<int>(seq.sharedNodes.size()) * P;
    // Partial view of one more full shared page: the child whose
    // first j tokens extend our prompt furthest (j >= 1, capped so
    // at least one token stays uncached). The first write into the
    // view copies the page (COW).
    if (pos < cap) {
        std::int64_t parent =
            seq.sharedNodes.empty() ? -1 : seq.sharedNodes.back();
        const std::vector<std::int64_t> &siblings =
            parent < 0 ? rootsByChannel_[channel]
                       : nodes_[parent].children;
        std::int64_t best = -1;
        int best_j = 0;
        const int limit = std::min(P, cap - pos);
        for (std::int64_t c : siblings) {
            const PageNode &node = nodes_[c];
            int j = 0;
            while (j < limit &&
                   node.tokens[j] == promptTokens[pos + j])
                ++j;
            if (j > best_j) {
                best_j = j;
                best = c;
            }
        }
        if (best >= 0 && best_j >= 1) {
            incref(best);
            seq.sharedNodes.push_back(best);
            seq.partialTail = true;
            pos += best_j;
        }
    }
    seq.tokens = pos;
    if (pos > 0) {
        ++prefixStats_.hits;
        prefixStats_.tokensDeduped += static_cast<std::uint64_t>(pos);
        prefixStats_.pagesDeduped +=
            static_cast<std::uint64_t>(wholeSharedOf(seq));
    }
    return pos;
}

bool
PagedKvCache::appendToken(RequestId id)
{
    auto it = sequences_.find(id);
    NEUPIMS_ASSERT(it != sequences_.end(), "unknown request: ", id);
    return appendTokensImpl(it->second, 1);
}

bool
PagedKvCache::appendTokens(RequestId id, int tokens)
{
    NEUPIMS_ASSERT(tokens >= 1);
    auto it = sequences_.find(id);
    NEUPIMS_ASSERT(it != sequences_.end(), "unknown request: ", id);
    return appendTokensImpl(it->second, tokens);
}

bool
PagedKvCache::appendTokensImpl(Sequence &seq, int tokens)
{
    NEUPIMS_ASSERT(!seq.swapped, "appending to swapped-out request");
    // Private pages needed: total coverage minus whole shared pages
    // minus what we already hold. A partial-view tail contributes
    // nothing to coverage here — the copy-on-write replacement page
    // is exactly the +1 this yields.
    std::int64_t need = pagesForTokens(seq.tokens + tokens) -
                        wholeSharedOf(seq) - seq.pages;
    if (need > 0) {
        if (need >
            freePages_[seq.channel] + reclaimablePages(seq.channel))
            return false;
        for (std::int64_t i = 0; i < need; ++i)
            takePage(seq.channel);
        seq.pages += need;
    }
    if (seq.partialTail) {
        // First write into the shared tail view: the page was copied
        // into one of the private pages just reserved.
        ++prefixStats_.cowCopies;
        decref(seq.sharedNodes.back());
        seq.sharedNodes.pop_back();
        seq.partialTail = false;
    }
    seq.tokens += tokens;
    publishFullPages(seq);
    return true;
}

std::int64_t
PagedKvCache::pagesForAppend(RequestId id, int tokens) const
{
    auto it = sequences_.find(id);
    NEUPIMS_ASSERT(it != sequences_.end(), "unknown request: ", id);
    const Sequence &seq = it->second;
    return pagesForTokens(seq.tokens + tokens) - wholeSharedOf(seq) -
           seq.pages;
}

void
PagedKvCache::freeSequence(RequestId id)
{
    auto it = sequences_.find(id);
    if (it == sequences_.end())
        return;
    if (it->second.swapped) {
        hostPages_ -= it->second.pages;
    } else {
        freePages_[it->second.channel] += it->second.pages;
        for (std::int64_t n : it->second.sharedNodes)
            decref(n);
    }
    sequences_.erase(it);
}

std::int64_t
PagedKvCache::evictSequence(RequestId id)
{
    auto it = sequences_.find(id);
    NEUPIMS_ASSERT(it != sequences_.end(), "unknown request: ", id);
    NEUPIMS_ASSERT(!it->second.swapped,
                   "evicting swapped-out request ", id);
    Sequence &seq = it->second;
    std::int64_t freed = seq.pages;
    freePages_[seq.channel] += seq.pages;
    // Only the unshared suffix frees: last-reference nodes become
    // cached (reclaimable, hence free); nodes other sequences still
    // hold stay untouched.
    for (std::int64_t n : seq.sharedNodes) {
        if (nodes_[n].refcount == 1)
            ++freed;
        decref(n);
    }
    sequences_.erase(it);
    return freed;
}

Bytes
PagedKvCache::swapOut(RequestId id)
{
    auto it = sequences_.find(id);
    NEUPIMS_ASSERT(it != sequences_.end(), "unknown request: ", id);
    Sequence &seq = it->second;
    NEUPIMS_ASSERT(!seq.swapped, "double swap-out of request ", id);
    // The host copy holds the full sequence content, shared pages
    // included (they are read out, then dereferenced here).
    std::int64_t total = pagesForTokens(seq.tokens);
    freePages_[seq.channel] += seq.pages;
    for (std::int64_t n : seq.sharedNodes)
        decref(n);
    seq.sharedNodes.clear();
    seq.partialTail = false;
    hostPages_ += total;
    seq.pages = total;
    seq.swapped = true;
    seq.channel = kInvalidId;
    return static_cast<Bytes>(total) * cfg_.pageBytes();
}

Bytes
PagedKvCache::swapIn(RequestId id, ChannelId channel)
{
    auto it = sequences_.find(id);
    NEUPIMS_ASSERT(it != sequences_.end(), "unknown request: ", id);
    Sequence &seq = it->second;
    NEUPIMS_ASSERT(seq.swapped, "swap-in of device-resident request ",
                   id);
    if (!channelOnline(channel))
        return 0;
    // Re-walk the target channel's index: whole prompt pages still
    // cached there re-bind by reference and skip the transfer.
    std::vector<std::int64_t> matched;
    if (cfg_.prefixSharing && !seq.prompt.empty())
        matched = matchWholePages(
            channel, seq.prompt,
            std::min(static_cast<int>(seq.prompt.size()), seq.tokens));
    std::int64_t m = static_cast<std::int64_t>(matched.size());
    std::int64_t need = seq.pages - m;
    std::int64_t ref0 = 0;
    for (std::int64_t n : matched)
        ref0 += nodes_[n].refcount == 0 ? 1 : 0;
    if (freePages_[channel] + reclaimablePages(channel) - ref0 < need)
        return 0;
    for (std::int64_t n : matched)
        incref(n);
    if (cfg_.prefixSharing) {
        for (std::int64_t i = 0; i < need; ++i)
            takePage(channel);
    } else {
        freePages_[channel] -= need;
    }
    hostPages_ -= seq.pages;
    seq.pages = need;
    seq.swapped = false;
    seq.channel = channel;
    seq.sharedNodes = std::move(matched);
    if (m > 0)
        prefixStats_.pagesDeduped += static_cast<std::uint64_t>(m);
    publishFullPages(seq);
    return static_cast<Bytes>(need) * cfg_.pageBytes();
}

bool
PagedKvCache::isSwappedOut(RequestId id) const
{
    auto it = sequences_.find(id);
    return it != sequences_.end() && it->second.swapped;
}

std::int64_t
PagedKvCache::hostPagesOf(RequestId id) const
{
    auto it = sequences_.find(id);
    if (it == sequences_.end() || !it->second.swapped)
        return 0;
    return it->second.pages;
}

std::int64_t
PagedKvCache::pagesOf(RequestId id) const
{
    auto it = sequences_.find(id);
    if (it == sequences_.end() || it->second.swapped)
        return 0;
    return it->second.pages;
}

std::int64_t
PagedKvCache::sharedPagesOf(RequestId id) const
{
    auto it = sequences_.find(id);
    if (it == sequences_.end() || it->second.swapped)
        return 0;
    return static_cast<std::int64_t>(it->second.sharedNodes.size());
}

std::int64_t
PagedKvCache::evictablePagesOf(RequestId id) const
{
    auto it = sequences_.find(id);
    if (it == sequences_.end() || it->second.swapped)
        return 0;
    const Sequence &seq = it->second;
    std::int64_t evictable = seq.pages;
    for (std::int64_t n : seq.sharedNodes)
        evictable += nodes_[n].refcount == 1 ? 1 : 0;
    return evictable;
}

std::int64_t
PagedKvCache::cachedPages(ChannelId channel) const
{
    NEUPIMS_ASSERT(channel >= 0 && channel < cfg_.channels);
    return cfg_.prefixSharing ? cachedByChannel_[channel] : 0;
}

std::int64_t
PagedKvCache::indexPages(ChannelId channel) const
{
    NEUPIMS_ASSERT(channel >= 0 && channel < cfg_.channels);
    return static_cast<std::int64_t>(nodesByChannel_[channel].size());
}

std::int64_t
PagedKvCache::usedPages(ChannelId channel) const
{
    if (failed_[channel])
        return 0; // lost capacity is neither free nor in use
    return cfg_.pagesPerChannel() - freePages(channel);
}

double
PagedKvCache::utilization() const
{
    // Failed channels leave the denominator (their pages are lost,
    // not busy); with no faults this is the full device as before.
    double total = static_cast<double>(liveCapacityPages());
    if (total == 0.0)
        return 0.0;
    double free_total = 0.0;
    for (ChannelId ch = 0; ch < cfg_.channels; ++ch)
        free_total += static_cast<double>(freePages(ch));
    return 1.0 - free_total / total;
}

ChannelId
PagedKvCache::channelOf(RequestId id) const
{
    auto it = sequences_.find(id);
    return it == sequences_.end() ? kInvalidId : it->second.channel;
}

int
PagedKvCache::tokensOf(RequestId id) const
{
    auto it = sequences_.find(id);
    return it == sequences_.end() ? 0 : it->second.tokens;
}

} // namespace neupims::runtime
