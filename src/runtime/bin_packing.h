/**
 * @file
 * Algorithm 2: greedy min-load bin packing of requests onto PIM
 * channels, plus the round-robin baseline used by the naive NPU+PIM
 * configuration (§8.1).
 *
 * MHA latency on a channel is the sum of its requests' estimated
 * latencies, and the layer's MHA latency is the max over channels —
 * so the packer sorts requests by descending sequence length and
 * assigns each to the currently least-loaded channel.
 */

#ifndef NEUPIMS_RUNTIME_BIN_PACKING_H_
#define NEUPIMS_RUNTIME_BIN_PACKING_H_

#include <vector>

#include "common/types.h"
#include "runtime/latency_model.h"
#include "runtime/request.h"

namespace neupims::runtime {

/**
 * Greedy min-load bin packing (Algorithm 2).
 *
 * @param new_requests requests to place (their `channel` is written)
 * @param existing_load_per_channel current estimated load of every
 *        channel (from requests already resident there)
 * @param estimator Algorithm-1 latency estimator
 * @return per-channel load after placement
 */
std::vector<double>
greedyMinLoadBinPacking(std::vector<Request *> &new_requests,
                        std::vector<double> existing_load_per_channel,
                        const MhaLatencyEstimator &estimator);

/** Round-robin placement (naive NPU+PIM baseline). */
void roundRobinAssign(std::vector<Request *> &new_requests, int channels,
                      int &cursor);

/**
 * Load imbalance of an assignment: max channel load over mean load.
 * 1.0 is perfectly balanced.
 */
double loadImbalance(const std::vector<double> &loads);

} // namespace neupims::runtime

#endif // NEUPIMS_RUNTIME_BIN_PACKING_H_
