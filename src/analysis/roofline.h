/**
 * @file
 * Roofline / arithmetic-intensity analysis of LLM decoder operators
 * (paper Figure 4): generation-phase Logit/Attend GEMVs sit far left
 * of the machine balance point (memory-bound), summarization-phase
 * and batched weight-activation operators sit right of it
 * (compute-bound).
 */

#ifndef NEUPIMS_ANALYSIS_ROOFLINE_H_
#define NEUPIMS_ANALYSIS_ROOFLINE_H_

#include <string>
#include <vector>

#include "model/decoder_block.h"
#include "model/llm_config.h"

namespace neupims::analysis {

struct MachineSpec
{
    std::string name = "NeuPIMs-NPU";
    double peakTflops = 262.0;  ///< 8 x 128x128 MACs @ 1 GHz, fp16
    double memGBps = 2048.0;    ///< 32 channels x 64 GB/s

    /** Arithmetic intensity at the roofline knee (FLOPs/byte). */
    double
    balance() const
    {
        return peakTflops * 1e12 / (memGBps * 1e9);
    }
};

struct RooflinePoint
{
    std::string model;
    std::string operatorGroup; ///< "Logit/Attend" or "QKV/Proj/FFN"
    model::Phase phase;
    double intensity = 0.0;     ///< FLOPs per byte
    double attainableTflops = 0.0;
    bool memoryBound = false;
};

/**
 * Arithmetic intensity of the two operator groups of a decoder block
 * for both phases (Fig. 4's four point clusters per model).
 *
 * @param batch batched requests (generation) / prompts (summarization)
 * @param seq_len context length
 */
std::vector<RooflinePoint> rooflinePoints(const model::LlmConfig &cfg,
                                          const MachineSpec &machine,
                                          int batch, int seq_len);

/** Attainable TFLOPS at @p intensity under the roofline. */
double attainable(const MachineSpec &machine, double intensity);

} // namespace neupims::analysis

#endif // NEUPIMS_ANALYSIS_ROOFLINE_H_
