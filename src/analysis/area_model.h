/**
 * @file
 * CACTI-style area estimate of the dual-row-buffer addition (paper
 * §8.2: doubling the row-buffer resources at 22 nm costs 3.11% of
 * bank area).
 *
 * Substitution note (DESIGN.md): we reproduce the estimate, not the
 * CACTI tool — the model decomposes a DRAM bank into cell array,
 * row/column decoders, sense-amplifier stripe (the row buffer) and
 * I/O, with area fractions representative of CACTI 7 @ 22 nm, and
 * reports the delta from doubling the sense-amp stripe plus the
 * second set of bit-line isolation gates.
 */

#ifndef NEUPIMS_ANALYSIS_AREA_MODEL_H_
#define NEUPIMS_ANALYSIS_AREA_MODEL_H_

namespace neupims::analysis {

struct BankAreaBreakdown
{
    double cellArray = 0.858;   ///< fraction of bank area
    double rowDecoder = 0.040;
    double columnPath = 0.045;
    double senseAmps = 0.028;   ///< the row buffer proper
    double ioAndControl = 0.029;

    double total() const
    {
        return cellArray + rowDecoder + columnPath + senseAmps +
               ioAndControl;
    }
};

struct AreaEstimate
{
    double baselineBank = 1.0;
    double dualBufferBank = 1.0;
    double overheadFraction = 0.0; ///< (dual - base) / base
};

/**
 * Area overhead of dual row buffers: a second sense-amp stripe plus
 * isolation gates (10% of a stripe) on every bank.
 */
AreaEstimate dualRowBufferArea(const BankAreaBreakdown &bank = {});

} // namespace neupims::analysis

#endif // NEUPIMS_ANALYSIS_AREA_MODEL_H_
