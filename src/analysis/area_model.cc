#include "analysis/area_model.h"

namespace neupims::analysis {

AreaEstimate
dualRowBufferArea(const BankAreaBreakdown &bank)
{
    AreaEstimate est;
    est.baselineBank = bank.total();
    // Second sense-amp stripe + bit-line isolation gates (~10% of a
    // stripe) to mux the shared bit lines between the two buffers.
    double addition = bank.senseAmps * 1.10;
    est.dualBufferBank = est.baselineBank + addition;
    est.overheadFraction = addition / est.baselineBank;
    return est;
}

} // namespace neupims::analysis
