/**
 * @file
 * GPU resource-utilization study (paper Figure 5): compute, bandwidth
 * and capacity utilization of RTX3090- and A100-class systems running
 * four LLMs. Capacity utilization approaches 100% (device count is
 * sized by memory), while compute stays under 40% — the imbalance
 * that motivates the NPU+PIM split.
 */

#ifndef NEUPIMS_ANALYSIS_GPU_UTIL_H_
#define NEUPIMS_ANALYSIS_GPU_UTIL_H_

#include <string>
#include <vector>

#include "core/gpu_model.h"
#include "model/llm_config.h"

namespace neupims::analysis {

struct GpuUtilization
{
    std::string model;
    std::string gpu;
    int devices = 0;          ///< GPUs needed for weights + KV cache
    double computeUtil = 0.0;
    double bandwidthUtil = 0.0;
    double capacityUtil = 0.0;
    /** Layer-wise variation (the paper's error bars). */
    double computeUtilMin = 0.0;
    double computeUtilMax = 0.0;
};

/** Analyze one model on one GPU type. */
GpuUtilization analyzeGpuUtilization(const model::LlmConfig &model,
                                     const core::GpuConfig &gpu,
                                     int batch, double avg_seq_len);

/** RTX 3090 24 GB configuration. */
core::GpuConfig rtx3090();
/** A100 40 GB configuration. */
core::GpuConfig a100_40gb();

} // namespace neupims::analysis

#endif // NEUPIMS_ANALYSIS_GPU_UTIL_H_
