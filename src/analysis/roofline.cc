#include "analysis/roofline.h"

#include <algorithm>

#include "common/log.h"

namespace neupims::analysis {

double
attainable(const MachineSpec &machine, double intensity)
{
    NEUPIMS_ASSERT(intensity >= 0.0);
    return std::min(machine.peakTflops,
                    machine.memGBps * 1e9 * intensity / 1e12);
}

namespace {

/** Accumulate flops and streamed bytes of a set of operators. */
void
accumulate(const std::vector<model::OpDesc> &ops, bool gemv_group,
           int batch, double &flops, double &bytes)
{
    for (const auto &op : ops) {
        bool in_group = model::isGemvOp(op.kind);
        if (in_group != gemv_group)
            continue;
        if (model::isVectorOp(op.kind))
            continue;
        double scale = op.perRequest ? static_cast<double>(batch) : 1.0;
        flops += op.flops() * scale;
        bytes += static_cast<double>(op.streamBytes()) * scale;
    }
}

} // namespace

std::vector<RooflinePoint>
rooflinePoints(const model::LlmConfig &cfg, const MachineSpec &machine,
               int batch, int seq_len)
{
    std::vector<RooflinePoint> points;
    const int tp = 1; // intensity is tp-invariant; use the full model
    for (model::Phase phase :
         {model::Phase::Summarization, model::Phase::Generation}) {
        auto ops = model::buildDecoderOps(cfg, tp, batch, phase, seq_len);
        for (bool gemv_group : {true, false}) {
            double flops = 0.0, bytes = 0.0;
            accumulate(ops, gemv_group, batch, flops, bytes);
            NEUPIMS_ASSERT(bytes > 0.0);
            RooflinePoint p;
            p.model = cfg.name;
            p.operatorGroup =
                gemv_group ? "Logit/Attend" : "QKV/Proj/FFN";
            p.phase = phase;
            p.intensity = flops / bytes;
            p.attainableTflops = attainable(machine, p.intensity);
            p.memoryBound = p.intensity < machine.balance();
            points.push_back(p);
        }
    }
    return points;
}

} // namespace neupims::analysis
