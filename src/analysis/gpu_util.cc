#include "analysis/gpu_util.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"

namespace neupims::analysis {

core::GpuConfig
rtx3090()
{
    core::GpuConfig cfg;
    cfg.name = "RTX 3090";
    cfg.peakTflops = 142.0; // fp16 tensor peak
    cfg.hbmGBps = 936.0;
    cfg.memoryBytes = 24_GiB;
    return cfg;
}

core::GpuConfig
a100_40gb()
{
    core::GpuConfig cfg;
    cfg.name = "A100";
    cfg.peakTflops = 312.0;
    cfg.hbmGBps = 1555.0;
    cfg.memoryBytes = 40_GiB;
    return cfg;
}

GpuUtilization
analyzeGpuUtilization(const model::LlmConfig &model,
                      const core::GpuConfig &gpu, int batch,
                      double avg_seq_len)
{
    NEUPIMS_ASSERT(batch >= 1);

    // Size the cluster by memory capacity (weights + KV cache),
    // exactly how deployments provision GPUs (§3.1).
    double weight_bytes = static_cast<double>(model.totalParams()) *
                          model.bytesPerParam;
    double kv_bytes = static_cast<double>(batch) * avg_seq_len *
                      2.0 * static_cast<double>(model.dModel) *
                      model.bytesPerParam *
                      static_cast<double>(model.numLayers);
    double total = weight_bytes + kv_bytes;
    int devices = static_cast<int>(std::ceil(
        total / (0.9 * static_cast<double>(gpu.memoryBytes))));
    devices = std::max(devices, 1);

    core::GpuModel gm(gpu);
    // Tensor-parallel across the provisioned devices (§3.1 deploys
    // with tensor/pipeline parallelism; TP keeps batch intact).
    int tp = 1;
    for (int cand = devices; cand >= 1; --cand) {
        if (model.numHeads % cand == 0) {
            tp = cand;
            break;
        }
    }
    auto t = gm.layerTiming(model, tp, batch, avg_seq_len);

    GpuUtilization u;
    u.model = model.name;
    u.gpu = gpu.name;
    u.devices = devices;
    u.computeUtil = t.computeUtil;
    u.bandwidthUtil = t.bandwidthUtil;
    u.capacityUtil = total / (static_cast<double>(devices) *
                              static_cast<double>(gpu.memoryBytes));
    // Layer-wise variation: GEMM-dominated layers vs the attention
    // extremes (the paper's error bars).
    double gemm_util =
        t.computeUtil * t.totalSeconds / std::max(1e-12, t.gemmSeconds);
    u.computeUtilMax = std::min(1.0, gemm_util);
    u.computeUtilMin = t.computeUtil * 0.2; // attention-heavy slices
    return u;
}

} // namespace neupims::analysis
