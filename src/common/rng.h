/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * xoshiro256** with a splitmix64 seeder: fast, high-quality, and —
 * unlike std::mt19937 with std::*_distribution — bit-identical across
 * standard library implementations, which keeps workload batches (and
 * therefore bench tables) reproducible everywhere.
 */

#ifndef NEUPIMS_COMMON_RNG_H_
#define NEUPIMS_COMMON_RNG_H_

#include <cmath>
#include <cstdint>

namespace neupims {

class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        // splitmix64 expansion of the seed into the xoshiro state.
        std::uint64_t x = seed;
        for (auto &s : state_) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            s = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value (xoshiro256**). */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    uniformInt(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + static_cast<std::uint64_t>(uniform() *
                                               static_cast<double>(
                                                   hi - lo + 1));
    }

    /** Standard normal via Box-Muller (deterministic, no cached spare). */
    double
    normal()
    {
        double u1 = uniform();
        double u2 = uniform();
        // Avoid log(0).
        if (u1 <= 0.0)
            u1 = 0x1.0p-53;
        return std::sqrt(-2.0 * std::log(u1)) *
               std::cos(2.0 * 3.14159265358979323846 * u2);
    }

    /** Lognormal sample with the given parameters of ln X. */
    double
    lognormal(double mu, double sigma)
    {
        return std::exp(mu + sigma * normal());
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4] = {};
};

} // namespace neupims

#endif // NEUPIMS_COMMON_RNG_H_
