/**
 * @file
 * Fundamental scalar types shared by every simulator subsystem.
 *
 * The simulator operates on a single 1 GHz clock domain (Table 2 of the
 * paper: both the NPU and the HBM command clock run at 1 GHz), so one
 * Cycle equals one nanosecond of simulated time.
 */

#ifndef NEUPIMS_COMMON_TYPES_H_
#define NEUPIMS_COMMON_TYPES_H_

#include <cstdint>
#include <limits>

namespace neupims {

/** Simulated clock cycle count (1 cycle == 1 ns at the 1 GHz domain). */
using Cycle = std::uint64_t;

/** Sentinel for "never" / "not scheduled". */
inline constexpr Cycle kCycleMax = std::numeric_limits<Cycle>::max();

/** Bytes of data, used for traffic and capacity accounting. */
using Bytes = std::uint64_t;

/** Floating point operations, used for utilization accounting. */
using Flops = double;

/** Identifier types. Plain integers; invalid value is -1. */
using ChannelId = int;
using BankId = int;
using RequestId = std::int64_t;

inline constexpr int kInvalidId = -1;

/** Convert cycles at 1 GHz to seconds. */
constexpr double
cyclesToSeconds(Cycle cycles)
{
    return static_cast<double>(cycles) * 1e-9;
}

/** Convert cycles at 1 GHz to microseconds. */
constexpr double
cyclesToMicros(Cycle cycles)
{
    return static_cast<double>(cycles) * 1e-3;
}

/** Kibi/mebi/gibi byte helpers for readable configuration literals. */
constexpr Bytes operator""_KiB(unsigned long long v) { return v << 10; }
constexpr Bytes operator""_MiB(unsigned long long v) { return v << 20; }
constexpr Bytes operator""_GiB(unsigned long long v) { return v << 30; }

} // namespace neupims

#endif // NEUPIMS_COMMON_TYPES_H_
