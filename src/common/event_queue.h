/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A minimal gem5-style event queue: events are callbacks scheduled at an
 * absolute cycle; run() pops them in (cycle, sequence) order so events
 * scheduled at the same cycle execute in scheduling order
 * (deterministic replay). Components never tick every cycle — they
 * schedule their next interesting time, which is what keeps
 * GPT3-175B-scale windows simulable.
 */

#ifndef NEUPIMS_COMMON_EVENT_QUEUE_H_
#define NEUPIMS_COMMON_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/log.h"
#include "common/types.h"

namespace neupims {

class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;

    /** Current simulated cycle. */
    Cycle now() const { return now_; }

    /**
     * Schedule @p cb at absolute cycle @p when.
     * @pre when >= now(): events cannot be scheduled in the past.
     */
    void
    schedule(Cycle when, Callback cb)
    {
        NEUPIMS_ASSERT(when >= now_, "when=", when, " now=", now_);
        heap_.push(Entry{when, seq_++, std::move(cb)});
    }

    /** Schedule @p cb @p delta cycles from now. */
    void
    scheduleIn(Cycle delta, Callback cb)
    {
        schedule(now_ + delta, std::move(cb));
    }

    /** Whether any event is pending. */
    bool empty() const { return heap_.empty(); }

    /** Number of pending events. */
    std::size_t size() const { return heap_.size(); }

    /** Cycle of the next pending event. @pre !empty() */
    Cycle
    nextEventCycle() const
    {
        NEUPIMS_ASSERT(!heap_.empty());
        return heap_.top().when;
    }

    /**
     * Run until the queue drains or @p limit cycles is exceeded.
     * @return the final simulated cycle.
     */
    Cycle
    run(Cycle limit = kCycleMax)
    {
        while (!heap_.empty()) {
            // Copy out the entry: callbacks may schedule new events.
            Entry e = heap_.top();
            if (e.when > limit) {
                now_ = limit;
                return now_;
            }
            heap_.pop();
            NEUPIMS_ASSERT(e.when >= now_, "time went backwards");
            now_ = e.when;
            e.cb();
            ++executed_;
        }
        return now_;
    }

    /** Run a single event. @return false if the queue was empty. */
    bool
    step()
    {
        if (heap_.empty())
            return false;
        Entry e = heap_.top();
        heap_.pop();
        now_ = e.when;
        e.cb();
        ++executed_;
        return true;
    }

    /** Total events executed (engine statistics). */
    std::uint64_t executedEvents() const { return executed_; }

  private:
    struct Entry
    {
        Cycle when;
        std::uint64_t seq;
        Callback cb;

        bool
        operator>(const Entry &other) const
        {
            if (when != other.when)
                return when > other.when;
            return seq > other.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
    Cycle now_ = 0;
    std::uint64_t seq_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace neupims

#endif // NEUPIMS_COMMON_EVENT_QUEUE_H_
