/**
 * @file
 * Discrete-event simulation kernel.
 *
 * Events are callbacks scheduled at an absolute cycle; run() executes
 * them in (cycle, sequence) order so events scheduled at the same
 * cycle execute in scheduling order (deterministic replay). Components
 * never tick every cycle — they schedule their next interesting time,
 * which is what keeps GPT3-175B-scale windows simulable.
 *
 * The production EventQueue is a two-level bucketed (calendar) queue:
 *  - level 0 is a wheel of per-cycle buckets covering the next
 *    kL0Span cycles, where nearly every schedule lands in O(1) (DRAM
 *    timing constraints and the controller reservation horizon are
 *    all shorter than tREFI ~ 4k cycles);
 *  - level 1 is a wheel of coarse buckets, each spanning kL0Span
 *    cycles, absorbing completion callbacks committed further ahead
 *    (long GEMM/stream completions); a level-1 bucket cascades into
 *    level 0 when the window advances;
 *  - the rare event beyond both windows waits in an overflow heap
 *    that is swept into the wheels as they advance.
 *
 * A whole per-cycle bucket is dispatched per visit (batched same-cycle
 * dispatch) and bucket storage is pooled — cleared, never deallocated —
 * so steady-state scheduling does not allocate when callbacks fit the
 * small-buffer-optimized EventCallback. DESIGN.md §2 describes the
 * architecture and the ordering argument.
 *
 * HeapEventQueue preserves the original std::function-over-
 * std::priority_queue implementation as the reference for differential
 * tests and the bucketed-vs-heap engine microbenchmark.
 */

#ifndef NEUPIMS_COMMON_EVENT_QUEUE_H_
#define NEUPIMS_COMMON_EVENT_QUEUE_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <new>
#include <queue>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/log.h"
#include "common/types.h"

namespace neupims {

/**
 * An event whose execution splits into a thread-safe preparation and
 * a main-thread commit (DESIGN.md §12). The queue batches maximal
 * runs of *consecutive same-cycle* sharded events: prepare() calls of
 * distinct shards run concurrently on a ShardRunner (same-shard
 * events stay sequential, in order), then commit() calls replay in
 * the original (cycle, sequence) order on the dispatching thread.
 *
 * Contract: prepare() may read the queue clock (now() is stable while
 * a batch is in flight) and mutate only shard-private state; every
 * externally visible effect — callbacks into other components,
 * schedule() calls — must be buffered and performed in commit().
 * With no runner installed the event degrades to an inline
 * prepare-then-commit, byte-identical to a plain callback.
 */
class ShardedEvent
{
  public:
    virtual ~ShardedEvent() = default;

    /** Shard-local work; safe to run concurrently with other shards. */
    virtual void prepare() = 0;

    /** Replay buffered external effects; dispatching thread only. */
    virtual void commit() = 0;
};

/**
 * Executes one batch of sharded-event groups: groups[i] holds the
 * prepare() targets of one shard in sequence order and must run
 * in-order; distinct groups may run concurrently. run() blocks until
 * every prepare() returned. Implemented by core::WorkerPool.
 */
class ShardRunner
{
  public:
    virtual ~ShardRunner() = default;
    virtual void
    run(const std::vector<std::vector<ShardedEvent *>> &groups) = 0;
};

/**
 * Move-only callable wrapper with a small-buffer optimization sized
 * for the simulator's callbacks (captures of a component pointer, a
 * couple of cycles/ids and a shared_ptr tracker all fit inline).
 * Larger callables fall back to the heap transparently.
 */
class EventCallback
{
  public:
    /** Inline capture budget; larger callables are heap-allocated. */
    static constexpr std::size_t kInlineBytes = 48;

    EventCallback() = default;

    template <typename F,
              typename = std::enable_if_t<!std::is_same_v<
                  std::decay_t<F>, EventCallback>>>
    EventCallback(F &&f) // NOLINT: implicit by design, like std::function
    {
        using Fn = std::decay_t<F>;
        static_assert(std::is_invocable_r_v<void, Fn &>,
                      "EventCallback requires a void() callable");
        if constexpr (sizeof(Fn) <= kInlineBytes &&
                      alignof(Fn) <= alignof(std::max_align_t) &&
                      std::is_nothrow_move_constructible_v<Fn>) {
            ::new (storage()) Fn(std::forward<F>(f));
            ops_ = &inlineOps<Fn>();
        } else {
            *reinterpret_cast<void **>(storage()) =
                new Fn(std::forward<F>(f));
            ops_ = &heapOps<Fn>();
        }
    }

    EventCallback(EventCallback &&other) noexcept { moveFrom(other); }

    EventCallback &
    operator=(EventCallback &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    EventCallback(const EventCallback &) = delete;
    EventCallback &operator=(const EventCallback &) = delete;

    ~EventCallback() { reset(); }

    void
    operator()()
    {
        NEUPIMS_ASSERT(ops_ != nullptr, "empty EventCallback invoked");
        ops_->invoke(storage());
    }

    explicit operator bool() const { return ops_ != nullptr; }

  private:
    struct Ops
    {
        void (*invoke)(void *);
        /** Move-construct into @p dst from @p src and destroy @p src. */
        void (*relocate)(void *dst, void *src);
        void (*destroy)(void *);
    };

    void *storage() { return buf_; }

    void
    reset()
    {
        if (ops_) {
            ops_->destroy(storage());
            ops_ = nullptr;
        }
    }

    void
    moveFrom(EventCallback &other) noexcept
    {
        ops_ = other.ops_;
        if (ops_)
            ops_->relocate(storage(), other.storage());
        other.ops_ = nullptr;
    }

    template <typename Fn>
    static const Ops &
    inlineOps()
    {
        static const Ops ops = {
            [](void *p) { (*static_cast<Fn *>(p))(); },
            [](void *dst, void *src) {
                ::new (dst) Fn(std::move(*static_cast<Fn *>(src)));
                static_cast<Fn *>(src)->~Fn();
            },
            [](void *p) { static_cast<Fn *>(p)->~Fn(); },
        };
        return ops;
    }

    template <typename Fn>
    static const Ops &
    heapOps()
    {
        static const Ops ops = {
            [](void *p) { (**static_cast<Fn **>(p))(); },
            [](void *dst, void *src) {
                std::memcpy(dst, src, sizeof(void *));
            },
            [](void *p) { delete *static_cast<Fn **>(p); },
        };
        return ops;
    }

    alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
    const Ops *ops_ = nullptr;
};

class EventQueue
{
  public:
    using Callback = EventCallback;

    EventQueue() : l0_(kL0Span), l0Bits_(kL0Span / 64, 0)
    {
        // Level 1 is allocated on first use: short-lived queues that
        // never schedule past the level-0 window skip its setup cost.
    }

    /** Current simulated cycle. */
    Cycle now() const { return now_; }

    /**
     * Schedule @p cb (any void() callable) at absolute cycle @p when.
     * Templated so the callback is constructed directly in its bucket
     * slot instead of moving through a temporary.
     * @pre when >= now(): events cannot be scheduled in the past.
     */
    template <typename F>
    void
    schedule(Cycle when, F &&cb)
    {
        scheduleTagged(when, std::forward<F>(cb), nullptr);
    }

    /**
     * Schedule @p ev as a sharded event at @p when. Ordering is
     * identical to schedule()-ing an inline prepare-then-commit
     * callback at the same point; the shard tag only lets run()
     * batch consecutive same-cycle sharded events onto the installed
     * ShardRunner. @p ev must outlive its dispatch.
     */
    void
    scheduleSharded(Cycle when, ShardedEvent *ev)
    {
        scheduleTagged(
            when,
            [ev] {
                ev->prepare();
                ev->commit();
            },
            ev);
    }

    /**
     * Install (or clear, with nullptr) the parallel batch executor.
     * Without a runner every sharded event executes inline; results
     * are bit-identical either way.
     */
    void setShardRunner(ShardRunner *runner) { runner_ = runner; }

    /** Schedule @p cb @p delta cycles from now. */
    template <typename F>
    void
    scheduleIn(Cycle delta, F &&cb)
    {
        schedule(now_ + delta, std::forward<F>(cb));
    }

    /** Whether any event is pending. */
    bool empty() const { return size_ == 0; }

    /** Number of pending events. */
    std::size_t size() const { return size_; }

    /** Cycle of the next pending event. @pre !empty() */
    Cycle
    nextEventCycle() const
    {
        NEUPIMS_ASSERT(size_ > 0);
        if (l0Count_ > 0)
            return nextL0Cycle();
        if (l1Count_ > 0) {
            // The next level-1 bucket holds the earliest events, but
            // unsorted: take its minimum cycle.
            std::size_t idx = l1Index(nextL1Span());
            Cycle best = kCycleMax;
            for (const auto &e : l1_[idx])
                best = e.when < best ? e.when : best;
            return best;
        }
        return far_.top().when;
    }

    /**
     * Run until the queue drains or @p limit cycles is exceeded.
     * @return the final simulated cycle.
     */
    Cycle
    run(Cycle limit = kCycleMax)
    {
        while (size_ > 0) {
            if (l0Count_ == 0)
                advanceWindow();
            Cycle when = nextL0Cycle();
            if (when > limit) {
                now_ = std::max(now_, limit);
                return now_;
            }
            NEUPIMS_ASSERT(when >= now_, "time went backwards");
            now_ = when;
            // Batched same-cycle dispatch: drain the whole bucket,
            // including events the callbacks append at this cycle.
            // Same-cycle appends are parked in drainAppend_, so the
            // bucket is stable and callbacks run in place with no
            // per-event move; executed callbacks are destroyed
            // wholesale when the bucket is released.
            std::size_t idx = l0Index(when);
            auto &bucket = l0_[idx];
            std::size_t start = head_; // step() may have consumed some
            draining_ = true;
            while (true) {
                while (head_ < bucket.size()) {
                    if (runner_ != nullptr &&
                        bucket[head_].shard != nullptr) {
                        // Maximal run of consecutive sharded events
                        // at this cycle: prepare in parallel across
                        // shards, then commit in sequence order.
                        std::size_t last = head_ + 1;
                        while (last < bucket.size() &&
                               bucket[last].shard != nullptr)
                            ++last;
                        if (last - head_ > 1) {
                            dispatchShardedRun(bucket, head_, last);
                            head_ = last;
                            continue;
                        }
                    }
                    bucket[head_++].cb();
                }
                if (drainAppend_.empty())
                    break;
                for (auto &e : drainAppend_)
                    bucket.push_back(std::move(e));
                drainAppend_.clear();
            }
            draining_ = false;
            // Counters are settled once per bucket; callbacks do not
            // observe size()/executedEvents() mid-drain.
            std::size_t drained = head_ - start;
            size_ -= drained;
            l0Count_ -= drained;
            executed_ += drained;
            releaseBucket(idx);
        }
        return now_;
    }

    /**
     * Run a single event, honoring the same monotonicity and limit
     * semantics as run().
     * @return false if the queue was empty or the next event lies
     *         beyond @p limit (in which case now() advances to the
     *         limit, as run() does).
     */
    bool
    step(Cycle limit = kCycleMax)
    {
        if (size_ == 0)
            return false;
        if (l0Count_ == 0)
            advanceWindow();
        Cycle when = nextL0Cycle();
        if (when > limit) {
            now_ = std::max(now_, limit);
            return false;
        }
        NEUPIMS_ASSERT(when >= now_, "time went backwards");
        now_ = when;
        std::size_t idx = l0Index(when);
        auto &bucket = l0_[idx];
        draining_ = true;
        bucket[head_++].cb();
        draining_ = false;
        for (auto &e : drainAppend_)
            bucket.push_back(std::move(e));
        drainAppend_.clear();
        --size_;
        --l0Count_;
        ++executed_;
        if (head_ == bucket.size())
            releaseBucket(idx);
        return true;
    }

    /** Total events executed (engine statistics). */
    std::uint64_t executedEvents() const { return executed_; }

  private:
    /** Level-0 wheel: one bucket per cycle over kL0Span cycles. */
    static constexpr std::size_t kL0Bits = 12;
    static constexpr std::size_t kL0Span = std::size_t{1} << kL0Bits;
    /** Level-1 wheel: kL1Buckets buckets of kL0Span cycles each. */
    static constexpr std::size_t kL1Bits = 12;
    static constexpr std::size_t kL1Buckets = std::size_t{1} << kL1Bits;

    struct L0Event
    {
        template <typename F>
        L0Event(std::uint64_t s, F &&f, ShardedEvent *sh = nullptr)
            : seq(s), cb(std::forward<F>(f)), shard(sh)
        {}

        std::uint64_t seq;
        Callback cb;
        ShardedEvent *shard; ///< non-null: batchable via ShardRunner
    };

    struct L1Event
    {
        template <typename F>
        L1Event(Cycle w, std::uint64_t s, F &&f,
                ShardedEvent *sh = nullptr)
            : when(w), seq(s), cb(std::forward<F>(f)), shard(sh)
        {}

        Cycle when;
        std::uint64_t seq;
        mutable Callback cb; ///< moved out of the heap top on sweep
        ShardedEvent *shard; ///< non-null: batchable via ShardRunner

        bool
        operator>(const L1Event &other) const
        {
            if (when != other.when)
                return when > other.when;
            return seq > other.seq;
        }
    };

    /** schedule() with an optional shard tag carried alongside @p cb. */
    template <typename F>
    void
    scheduleTagged(Cycle when, F &&cb, ShardedEvent *shard)
    {
        NEUPIMS_ASSERT(when >= now_, "when=", when, " now=", now_);
        ++size_;
        Cycle span = when >> kL0Bits;
        if (span < l0Span_) {
            // Rare: run(limit) parked now_ before a window that had
            // already advanced to the next pending event, and the
            // caller now schedules into the gap. Rewind the windows.
            retreatWindow(span);
        }
        if (span == l0Span_) {
            // Level 0: per-cycle bucket, O(1).
            if (draining_ && when == now_) {
                // Appending to the bucket being drained could move it
                // under the executing callback; park same-cycle
                // events aside — the drain loop folds them back in.
                drainAppend_.emplace_back(seq_++, std::forward<F>(cb),
                                          shard);
                ++l0Count_;
                return;
            }
            std::size_t idx = l0Index(when);
            l0_[idx].emplace_back(seq_++, std::forward<F>(cb), shard);
            l0Bits_[idx >> 6] |= 1ULL << (idx & 63);
            ++l0Count_;
        } else if (span - l0Span_ < kL1Buckets) {
            // Level 1: coarse bucket, cascaded when the window gets
            // there. Insertion order within a bucket is sequence
            // order, which the cascade preserves.
            ensureL1();
            std::size_t idx = l1Index(span);
            l1_[idx].emplace_back(when, seq_++, std::forward<F>(cb),
                                  shard);
            l1Bits_[idx >> 6] |= 1ULL << (idx & 63);
            ++l1Count_;
        } else {
            far_.push(
                L1Event{when, seq_++, std::forward<F>(cb), shard});
        }
    }

    /**
     * Execute bucket[first..last) — all sharded — as one batch:
     * group by shard (insertion order preserves per-shard sequence
     * order), run every group's prepare()s on the runner (groups in
     * parallel, in-order within a group), then commit() back on this
     * thread in original sequence order. commit() may schedule; the
     * drain loop's drainAppend_ protocol already covers that.
     */
    void
    dispatchShardedRun(std::vector<L0Event> &bucket, std::size_t first,
                       std::size_t last)
    {
        std::size_t used = 0;
        for (std::size_t i = first; i < last; ++i) {
            ShardedEvent *ev = bucket[i].shard;
            std::size_t g = 0;
            while (g < used && shardGroups_[g].front() != ev)
                ++g;
            if (g == used) {
                if (used == shardGroups_.size())
                    shardGroups_.emplace_back();
                shardGroups_[used].clear();
                ++used;
            }
            shardGroups_[g].push_back(ev);
        }
        if (shardGroups_.size() != used)
            shardGroups_.resize(used);
        if (used > 1) {
            runner_->run(shardGroups_);
        } else {
            for (ShardedEvent *ev : shardGroups_.front())
                ev->prepare();
        }
        for (std::size_t i = first; i < last; ++i)
            bucket[i].shard->commit();
    }

    std::size_t
    l0Index(Cycle when) const
    {
        return static_cast<std::size_t>(when) & (kL0Span - 1);
    }

    std::size_t
    l1Index(Cycle span) const
    {
        return static_cast<std::size_t>(span) & (kL1Buckets - 1);
    }

    /** Earliest occupied level-0 cycle. @pre l0Count_ > 0 */
    Cycle
    nextL0Cycle() const
    {
        // All pending events are >= now_, so start the scan there
        // when now_ is inside the window.
        Cycle base = l0Span_ << kL0Bits;
        Cycle lo = now_ > base ? now_ : base;
        std::size_t start = l0Index(lo);
        std::size_t word = start >> 6;
        std::uint64_t bits =
            l0Bits_[word] & (~std::uint64_t{0} << (start & 63));
        while (true) {
            if (bits != 0) {
                std::size_t idx = (word << 6) +
                                  static_cast<std::size_t>(
                                      __builtin_ctzll(bits));
                return base + static_cast<Cycle>(idx);
            }
            ++word;
            NEUPIMS_ASSERT(word < l0Bits_.size(),
                           "level-0 bitmap scan ran past the window");
            bits = l0Bits_[word];
        }
    }

    static constexpr std::size_t kNpos = ~std::size_t{0};

    /** First set bit with index in [from, to), or kNpos. */
    static std::size_t
    scanBits(const std::vector<std::uint64_t> &bits, std::size_t from,
             std::size_t to)
    {
        if (from >= to)
            return kNpos;
        std::size_t word = from >> 6;
        std::size_t last_word = (to - 1) >> 6;
        std::uint64_t w = bits[word] & (~std::uint64_t{0} << (from & 63));
        while (true) {
            if (w != 0) {
                std::size_t idx =
                    (word << 6) +
                    static_cast<std::size_t>(__builtin_ctzll(w));
                return idx < to ? idx : kNpos;
            }
            if (++word > last_word)
                return kNpos;
            w = bits[word];
        }
    }

    /** Earliest occupied level-1 span. @pre l1Count_ > 0 */
    Cycle
    nextL1Span() const
    {
        // Level-1 holds spans l0Span_+1 .. l0Span_+kL1Buckets-1; in
        // index space that is a circular range starting at `start`.
        std::size_t start = l1Index(l0Span_ + 1);
        std::size_t idx = scanBits(l1Bits_, start, kL1Buckets);
        if (idx == kNpos)
            idx = scanBits(l1Bits_, 0, start);
        NEUPIMS_ASSERT(idx != kNpos, "empty level-1 wheel");
        std::size_t off = idx >= start ? idx - start
                                       : kL1Buckets - start + idx;
        return l0Span_ + 1 + static_cast<Cycle>(off);
    }

    /**
     * The level-0 window drained: advance it to the next occupied
     * level-1 bucket (cascading that bucket into level 0) or rebase
     * both windows from the overflow heap. Newly opened level-1 spans
     * are swept from the overflow heap immediately so a cycle can
     * never hold events in two structures at once — that is what
     * keeps (cycle, sequence) order global.
     */
    void
    advanceWindow()
    {
        NEUPIMS_ASSERT(l0Count_ == 0);
        if (l1Count_ > 0) {
            Cycle span = nextL1Span();
            std::size_t idx = l1Index(span);
            l0Span_ = span;
            for (auto &e : l1_[idx]) {
                std::size_t b = l0Index(e.when);
                l0_[b].push_back(
                    L0Event{e.seq, std::move(e.cb), e.shard});
                l0Bits_[b >> 6] |= 1ULL << (b & 63);
                ++l0Count_;
                --l1Count_;
            }
            l1_[idx].clear();
            l1Bits_[idx >> 6] &= ~(1ULL << (idx & 63));
        } else {
            NEUPIMS_ASSERT(!far_.empty());
            l0Span_ = far_.top().when >> kL0Bits;
        }
        // Newly opened spans may already have overflow events; pull
        // them in before any direct schedule can target those spans.
        sweepOverflow();
        NEUPIMS_ASSERT(l0Count_ > 0, "window advance produced no work");
    }

    /**
     * Rewind both windows so @p target_span becomes the level-0 span.
     * Every wheel resident is demoted to the overflow heap (which
     * orders by (cycle, sequence) regardless) and whatever fits the
     * rewound windows is swept straight back. Only reachable through
     * the run(limit)-then-schedule-into-the-gap pattern, never on the
     * simulator hot path.
     */
    void
    retreatWindow(Cycle target_span)
    {
        for (std::size_t idx = 0; l0Count_ > 0 && idx < kL0Span; ++idx) {
            if (!(l0Bits_[idx >> 6] & (1ULL << (idx & 63))))
                continue;
            Cycle when = (l0Span_ << kL0Bits) + static_cast<Cycle>(idx);
            for (auto &e : l0_[idx]) {
                far_.push(
                    L1Event{when, e.seq, std::move(e.cb), e.shard});
                --l0Count_;
            }
            l0_[idx].clear();
            l0Bits_[idx >> 6] &= ~(1ULL << (idx & 63));
        }
        for (std::size_t idx = 0; l1Count_ > 0 && idx < kL1Buckets;
             ++idx) {
            if (!(l1Bits_[idx >> 6] & (1ULL << (idx & 63))))
                continue;
            for (auto &e : l1_[idx]) {
                far_.push(
                    L1Event{e.when, e.seq, std::move(e.cb), e.shard});
                --l1Count_;
            }
            l1_[idx].clear();
            l1Bits_[idx >> 6] &= ~(1ULL << (idx & 63));
        }
        head_ = 0;
        l0Span_ = target_span;
        sweepOverflow();
    }

    /** Move overflow events that now fit the windows into them. */
    void
    sweepOverflow()
    {
        while (!far_.empty()) {
            Cycle span = far_.top().when >> kL0Bits;
            if (span != l0Span_ && span - l0Span_ >= kL1Buckets)
                return;
            const L1Event &top = far_.top();
            if (span == l0Span_) {
                std::size_t b = l0Index(top.when);
                l0_[b].push_back(
                    L0Event{top.seq, std::move(top.cb), top.shard});
                l0Bits_[b >> 6] |= 1ULL << (b & 63);
                ++l0Count_;
            } else {
                ensureL1();
                std::size_t idx = l1Index(span);
                l1_[idx].push_back(L1Event{top.when, top.seq,
                                           std::move(top.cb),
                                           top.shard});
                l1Bits_[idx >> 6] |= 1ULL << (idx & 63);
                ++l1Count_;
            }
            far_.pop();
        }
    }

    /** Allocate the level-1 wheel on first use. */
    void
    ensureL1()
    {
        if (l1_.empty()) {
            l1_.resize(kL1Buckets);
            l1Bits_.assign(kL1Buckets / 64, 0);
        }
    }

    /** Recycle a fully drained bucket (keep its storage pooled). */
    void
    releaseBucket(std::size_t idx)
    {
        l0_[idx].clear();
        head_ = 0;
        l0Bits_[idx >> 6] &= ~(1ULL << (idx & 63));
    }

    std::vector<std::vector<L0Event>> l0_; ///< per-cycle buckets
    std::vector<std::uint64_t> l0Bits_;    ///< level-0 occupancy
    std::vector<std::vector<L1Event>> l1_; ///< per-span buckets
    std::vector<std::uint64_t> l1Bits_;    ///< level-1 occupancy
    std::priority_queue<L1Event, std::vector<L1Event>, std::greater<>>
        far_; ///< events beyond both windows

    Cycle l0Span_ = 0;      ///< level-0 window covers this span
    std::size_t head_ = 0;  ///< drain cursor within the front bucket
    std::size_t l0Count_ = 0;
    std::size_t l1Count_ = 0;
    std::size_t size_ = 0;
    bool draining_ = false; ///< a bucket is being executed in place
    std::vector<L0Event> drainAppend_; ///< same-cycle mid-drain appends

    ShardRunner *runner_ = nullptr; ///< null: sharded events run inline
    std::vector<std::vector<ShardedEvent *>>
        shardGroups_; ///< pooled per-batch grouping scratch

    Cycle now_ = 0;
    std::uint64_t seq_ = 0;
    std::uint64_t executed_ = 0;
};

/**
 * Reference implementation: the seed's std::function-over-
 * std::priority_queue queue, byte-for-byte semantics. Kept for
 * differential tests and to quantify the calendar queue in the
 * engine microbenchmarks.
 */
class HeapEventQueue
{
  public:
    using Callback = std::function<void()>;

    HeapEventQueue() = default;

    Cycle now() const { return now_; }

    void
    schedule(Cycle when, Callback cb)
    {
        NEUPIMS_ASSERT(when >= now_, "when=", when, " now=", now_);
        heap_.push(Entry{when, seq_++, std::move(cb)});
    }

    void
    scheduleIn(Cycle delta, Callback cb)
    {
        schedule(now_ + delta, std::move(cb));
    }

    bool empty() const { return heap_.empty(); }
    std::size_t size() const { return heap_.size(); }

    Cycle
    nextEventCycle() const
    {
        NEUPIMS_ASSERT(!heap_.empty());
        return heap_.top().when;
    }

    Cycle
    run(Cycle limit = kCycleMax)
    {
        while (!heap_.empty()) {
            // Copy out the entry: callbacks may schedule new events.
            Entry e = heap_.top();
            if (e.when > limit) {
                now_ = std::max(now_, limit);
                return now_;
            }
            heap_.pop();
            NEUPIMS_ASSERT(e.when >= now_, "time went backwards");
            now_ = e.when;
            e.cb();
            ++executed_;
        }
        return now_;
    }

    bool
    step(Cycle limit = kCycleMax)
    {
        if (heap_.empty())
            return false;
        Entry e = heap_.top();
        if (e.when > limit) {
            now_ = std::max(now_, limit);
            return false;
        }
        heap_.pop();
        NEUPIMS_ASSERT(e.when >= now_, "time went backwards");
        now_ = e.when;
        e.cb();
        ++executed_;
        return true;
    }

    std::uint64_t executedEvents() const { return executed_; }

  private:
    struct Entry
    {
        Cycle when;
        std::uint64_t seq;
        Callback cb;

        bool
        operator>(const Entry &other) const
        {
            if (when != other.when)
                return when > other.when;
            return seq > other.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
    Cycle now_ = 0;
    std::uint64_t seq_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace neupims

#endif // NEUPIMS_COMMON_EVENT_QUEUE_H_
