/**
 * @file
 * Lightweight statistics package (gem5 Stats-inspired).
 *
 * Components register named scalars, averages and histograms with a
 * StatSet; benches and tests read them back by name. Busy-interval
 * tracking (UtilizationTracker) underlies every utilization number the
 * paper reports (Table 4, Figure 6).
 */

#ifndef NEUPIMS_COMMON_STATS_H_
#define NEUPIMS_COMMON_STATS_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/log.h"
#include "common/types.h"

namespace neupims {

/** A named accumulating scalar statistic. */
class Scalar
{
  public:
    void add(double v) { value_ += v; ++samples_; }
    void set(double v) { value_ = v; }
    double value() const { return value_; }
    std::uint64_t samples() const { return samples_; }
    void reset() { value_ = 0.0; samples_ = 0; }

  private:
    double value_ = 0.0;
    std::uint64_t samples_ = 0;
};

/** Distribution statistic: min/max/mean/stddev over samples. */
class Distribution
{
  public:
    void
    sample(double v)
    {
        sum_ += v;
        sumSq_ += v * v;
        min_ = samples_ ? std::min(min_, v) : v;
        max_ = samples_ ? std::max(max_, v) : v;
        ++samples_;
    }

    std::uint64_t count() const { return samples_; }
    double sum() const { return sum_; }
    double mean() const { return samples_ ? sum_ / samples_ : 0.0; }
    double minValue() const { return samples_ ? min_ : 0.0; }
    double maxValue() const { return samples_ ? max_ : 0.0; }

    double
    variance() const
    {
        if (samples_ < 2)
            return 0.0;
        double m = mean();
        return std::max(0.0, sumSq_ / samples_ - m * m);
    }

    void
    reset()
    {
        sum_ = sumSq_ = 0.0;
        min_ = max_ = 0.0;
        samples_ = 0;
    }

  private:
    double sum_ = 0.0;
    double sumSq_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    std::uint64_t samples_ = 0;
};

/**
 * Tracks the union of busy intervals of a resource over simulated time,
 * merging overlaps, so utilization = busy / elapsed is exact even when
 * concurrent jobs overlap on the same resource pool.
 */
class UtilizationTracker
{
  public:
    /**
     * Record that the resource was busy during [start, end).
     *
     * Resource timelines reserve slots in non-decreasing start order,
     * so adjacent/overlapping intervals coalesce into the tail in
     * O(1) — a stream of millions of back-to-back bus bursts stays a
     * handful of intervals. Out-of-order inserts still work (they
     * fall back to a deferred sort+merge).
     */
    void
    addBusy(Cycle start, Cycle end)
    {
        if (end <= start)
            return;
        if (!intervals_.empty() && merged_ &&
            start >= intervals_.back().first) {
            if (start <= intervals_.back().second) {
                intervals_.back().second =
                    std::max(intervals_.back().second, end);
                return;
            }
            intervals_.emplace_back(start, end);
            return;
        }
        intervals_.emplace_back(start, end);
        merged_ = intervals_.size() == 1;
    }

    /** Total busy cycles in [0, horizon), overlaps merged. */
    Cycle
    busyCycles(Cycle horizon = kCycleMax)
    {
        mergeIntervals();
        Cycle busy = 0;
        for (const auto &[s, e] : intervals_) {
            if (s >= horizon)
                break;
            busy += std::min(e, horizon) - s;
        }
        return busy;
    }

    /** Busy fraction of [windowStart, windowEnd). */
    double
    utilization(Cycle windowStart, Cycle windowEnd)
    {
        NEUPIMS_ASSERT(windowEnd > windowStart);
        mergeIntervals();
        Cycle busy = 0;
        for (const auto &[s, e] : intervals_) {
            Cycle lo = std::max(s, windowStart);
            Cycle hi = std::min(e, windowEnd);
            if (hi > lo)
                busy += hi - lo;
        }
        return static_cast<double>(busy) /
               static_cast<double>(windowEnd - windowStart);
    }

    void
    reset()
    {
        intervals_.clear();
        merged_ = true;
    }

  private:
    void
    mergeIntervals()
    {
        if (merged_)
            return;
        std::sort(intervals_.begin(), intervals_.end());
        std::vector<std::pair<Cycle, Cycle>> out;
        for (const auto &iv : intervals_) {
            if (!out.empty() && iv.first <= out.back().second)
                out.back().second = std::max(out.back().second, iv.second);
            else
                out.push_back(iv);
        }
        intervals_ = std::move(out);
        merged_ = true;
    }

    std::vector<std::pair<Cycle, Cycle>> intervals_;
    bool merged_ = true;
};

/** Name → scalar/distribution registry for one component tree. */
class StatSet
{
  public:
    Scalar &scalar(const std::string &name) { return scalars_[name]; }
    Distribution &dist(const std::string &name) { return dists_[name]; }

    bool
    hasScalar(const std::string &name) const
    {
        return scalars_.count(name) > 0;
    }

    double
    value(const std::string &name) const
    {
        auto it = scalars_.find(name);
        NEUPIMS_ASSERT(it != scalars_.end(), "unknown stat ", name);
        return it->second.value();
    }

    const std::map<std::string, Scalar> &scalars() const { return scalars_; }
    const std::map<std::string, Distribution> &dists() const
    {
        return dists_;
    }

    void
    reset()
    {
        for (auto &[k, v] : scalars_)
            v.reset();
        for (auto &[k, v] : dists_)
            v.reset();
    }

  private:
    std::map<std::string, Scalar> scalars_;
    std::map<std::string, Distribution> dists_;
};

} // namespace neupims

#endif // NEUPIMS_COMMON_STATS_H_
