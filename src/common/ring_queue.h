/**
 * @file
 * Vector-backed FIFO with up-front reservation.
 *
 * std::deque allocates its map and first chunk lazily and cannot
 * reserve, so queue-heavy components (the per-channel memory
 * controllers enqueue millions of row jobs per simulated iteration)
 * pay repeated growth on the hot path. RingQueue keeps elements in a
 * single contiguous vector with a head cursor; pop_front is O(1) and
 * the dead prefix is recycled wholesale when the queue drains (or
 * compacted when it dominates the buffer), so push/pop are amortized
 * allocation-free after reserve().
 */

#ifndef NEUPIMS_COMMON_RING_QUEUE_H_
#define NEUPIMS_COMMON_RING_QUEUE_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "common/log.h"

namespace neupims {

template <typename T>
class RingQueue
{
  public:
    RingQueue() = default;

    void reserve(std::size_t n) { buf_.reserve(n); }

    bool empty() const { return head_ == buf_.size(); }
    std::size_t size() const { return buf_.size() - head_; }

    T &
    front()
    {
        NEUPIMS_ASSERT(!empty());
        return buf_[head_];
    }

    const T &
    front() const
    {
        NEUPIMS_ASSERT(!empty());
        return buf_[head_];
    }

    void
    push_back(T value)
    {
        buf_.push_back(std::move(value));
    }

    void
    pop_front()
    {
        NEUPIMS_ASSERT(!empty());
        ++head_;
        if (head_ == buf_.size()) {
            // Drained: recycle the whole buffer in O(1).
            buf_.clear();
            head_ = 0;
        } else if (head_ >= kCompactThreshold && head_ * 2 >= buf_.size()) {
            // The dead prefix dominates: slide the live elements down
            // so a never-empty queue cannot grow without bound.
            buf_.erase(buf_.begin(),
                       buf_.begin() + static_cast<std::ptrdiff_t>(head_));
            head_ = 0;
        }
    }

  private:
    static constexpr std::size_t kCompactThreshold = 64;

    std::vector<T> buf_;
    std::size_t head_ = 0;
};

} // namespace neupims

#endif // NEUPIMS_COMMON_RING_QUEUE_H_
