/**
 * @file
 * gem5-style status/error reporting: inform(), warn(), fatal(), panic().
 *
 * fatal() is for user errors (bad configuration) and exits cleanly;
 * panic() is for internal invariant violations and aborts. Both are
 * [[noreturn]]. Verbosity of inform()/warn() is controlled by
 * Log::setLevel() so tests and benches can silence chatter.
 */

#ifndef NEUPIMS_COMMON_LOG_H_
#define NEUPIMS_COMMON_LOG_H_

#include <sstream>
#include <string>

namespace neupims {

class Log
{
  public:
    enum class Level { Silent = 0, Warn = 1, Inform = 2, Debug = 3 };

    static void setLevel(Level level);
    static Level level();

    static void inform(const std::string &msg);
    static void warn(const std::string &msg);
    static void debug(const std::string &msg);
    [[noreturn]] static void fatal(const std::string &msg);
    [[noreturn]] static void panic(const std::string &msg);

    /**
     * Program output (bench tables, report rows): msg plus a newline
     * to stdout, unconditionally — not subject to the log level, which
     * only gates status chatter. The single designated stdout writer
     * for src/ libraries (sim-lint's `logging` rule bans the rest).
     */
    static void output(const std::string &msg);

  private:
    static Level level_;
};

/** Build a message from streamable parts: logMsg("x=", x, " y=", y). */
template <typename... Args>
std::string
logMsg(Args &&...args)
{
    std::ostringstream oss;
    ((oss << args), ...);
    return oss.str();
}

template <typename... Args>
void
inform(Args &&...args)
{
    Log::inform(logMsg(std::forward<Args>(args)...));
}

template <typename... Args>
void
warn(Args &&...args)
{
    Log::warn(logMsg(std::forward<Args>(args)...));
}

template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    Log::fatal(logMsg(std::forward<Args>(args)...));
}

template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    Log::panic(logMsg(std::forward<Args>(args)...));
}

template <typename... Args>
void
output(Args &&...args)
{
    Log::output(logMsg(std::forward<Args>(args)...));
}

/** panic() unless the invariant holds. Enabled in all build types. */
#define NEUPIMS_ASSERT(cond, ...)                                          \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::neupims::panic("assertion failed: " #cond " ",               \
                             ::neupims::logMsg(__VA_ARGS__), " at ",        \
                             __FILE__, ":", __LINE__);                      \
        }                                                                   \
    } while (0)

} // namespace neupims

#endif // NEUPIMS_COMMON_LOG_H_
