#include "common/log.h"

#include <cstdio>
#include <cstdlib>

namespace neupims {

Log::Level Log::level_ = Log::Level::Warn;

void
Log::setLevel(Level level)
{
    level_ = level;
}

Log::Level
Log::level()
{
    return level_;
}

void
Log::inform(const std::string &msg)
{
    if (level_ >= Level::Inform)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
Log::warn(const std::string &msg)
{
    if (level_ >= Level::Warn)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
Log::debug(const std::string &msg)
{
    if (level_ >= Level::Debug)
        std::fprintf(stderr, "debug: %s\n", msg.c_str());
}

void
Log::fatal(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
Log::panic(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

} // namespace neupims
