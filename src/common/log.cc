#include "common/log.h"

#include <cstdio>
#include <cstdlib>

namespace neupims {

Log::Level Log::level_ = Log::Level::Warn;

void
Log::setLevel(Level level)
{
    level_ = level;
}

Log::Level
Log::level()
{
    return level_;
}

void
Log::inform(const std::string &msg)
{
    if (level_ >= Level::Inform)
        // NOLINT-SIM-NEXTLINE(logging): this is the log sink itself
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
Log::warn(const std::string &msg)
{
    if (level_ >= Level::Warn)
        // NOLINT-SIM-NEXTLINE(logging): this is the log sink itself
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
Log::debug(const std::string &msg)
{
    if (level_ >= Level::Debug)
        // NOLINT-SIM-NEXTLINE(logging): this is the log sink itself
        std::fprintf(stderr, "debug: %s\n", msg.c_str());
}

void
Log::fatal(const std::string &msg)
{
    // NOLINT-SIM-NEXTLINE(logging): this is the log sink itself
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
Log::panic(const std::string &msg)
{
    // NOLINT-SIM-NEXTLINE(logging): this is the log sink itself
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
Log::output(const std::string &msg)
{
    // The one designated stdout writer for src/ libraries: program
    // output (bench tables, reports) as opposed to status logging.
    // Byte-identical to what printf("%s\n", …) produced.
    // NOLINT-SIM-NEXTLINE(logging): this is the program-output sink itself
    std::fputs(msg.c_str(), stdout);
    // NOLINT-SIM-NEXTLINE(logging): this is the program-output sink itself
    std::fputc('\n', stdout);
}

} // namespace neupims
