/**
 * @file
 * The NeuPIMs compiler framework (paper §4.4): lowers a model
 * specification plus the current batch composition into the concrete
 * per-layer work units the execution engine schedules — batched GEMM
 * jobs for the systolic arrays, per-channel PIM GEMV kernels for the
 * multi-head attention, vector-unit element counts, and the KV-cache
 * append traffic.
 *
 * Tile arithmetic deliberately mirrors Algorithm 1 (MHA latency
 * estimation): the number of bank-row tiles per GEMV is
 * (seq_len / banks) * (E / page) for logits and the transposed
 * equivalent for attend, so the runtime's estimator and the compiled
 * kernels agree (tested in tests/model).
 */

#ifndef NEUPIMS_MODEL_COMPILER_H_
#define NEUPIMS_MODEL_COMPILER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.h"
#include "model/llm_config.h"
#include "model/operators.h"
#include "npu/systolic_array.h"

namespace neupims::model {

/** Memory geometry the compiler needs (subset of dram::Organization). */
struct MemShape
{
    int channels = 32;
    int banksPerChannel = 32;
    Bytes pageBytes = 1024;
    Bytes burstBytes = 64;
};

/** One batched weight-activation GEMM on the systolic arrays. */
struct GemmWork
{
    std::string label;
    npu::GemmShape shape;

    Flops flops() const { return shape.flops(); }
    Bytes weightBytes() const { return shape.weightBytes(); }
};

/** One GEMV kernel's footprint (logit or attend of one request). */
struct GemvKernelWork
{
    int rowTiles = 0;      ///< bank-rows of matrix operand
    int gwrites = 0;       ///< operand-vector chunks staged
    int resultBursts = 0;  ///< 64 B result bursts back to the host

    bool empty() const { return rowTiles == 0; }
};

/** The attention work of one request on its channel. */
struct PimRequestWork
{
    int seqLen = 0;
    GemvKernelWork logit;
    GemvKernelWork attend;
    std::uint64_t softmaxElems = 0;
};

/**
 * One request's prefill slice as the scheduler hands it down: the
 * next @p newTokens prompt tokens of a request whose KV lives on
 * @p channel, @p startToken prompt tokens already processed by
 * earlier chunks.
 */
struct PrefillSliceSpec
{
    ChannelId channel = 0;
    int startToken = 0;
    int newTokens = 0;
};

/**
 * The NPU-side attention work of one prefill slice: causal
 * self-attention of newTokens fresh queries against the
 * startToken + newTokens keys resident so far. Compute-bound batched
 * GEMMs on the systolic arrays — no PIM GEMV is emitted for prefill.
 */
struct PrefillAttnWork
{
    ChannelId channel = 0;
    int newTokens = 0;
    int contextLen = 0; ///< startToken + newTokens (causal window)
    /** Softmax elements: per device head, each new query row i
     * attends to startToken + i keys (causal). */
    std::uint64_t softmaxElems = 0;
    Bytes kvReadBytes = 0; ///< K+V bytes streamed from the channel
    Flops flops = 0.0;     ///< logit + attend MACs x 2

    /** Logit GEMM [new x d_dev] x [d_dev x ctx] (summed over heads). */
    npu::GemmShape logitShape(std::int64_t d_dev) const
    {
        return npu::GemmShape{newTokens, d_dev, contextLen};
    }

    /** Attend GEMM [new x ctx] x [ctx x d_dev] (summed over heads). */
    npu::GemmShape attendShape(std::int64_t d_dev) const
    {
        return npu::GemmShape{newTokens, contextLen, d_dev};
    }
};

/** Channel-level aggregate of a GEMV phase (analysis/tests). */
struct PimChannelWork
{
    int rowTiles = 0;
    int gwrites = 0;
    int resultBursts = 0;
    std::uint64_t softmaxElems = 0;

    bool empty() const { return rowTiles == 0; }
};

/** The multi-head attention work of one layer, split per channel. */
struct MhaWork
{
    /** Per-request kernels grouped by channel (execution input). */
    std::vector<std::vector<PimRequestWork>> requests;
    /** Channel aggregates (analysis, NPU-only streaming, tests). */
    std::vector<PimChannelWork> logit;
    std::vector<PimChannelWork> attend;
    std::vector<Bytes> kvAppendBytes; ///< per-channel K+V token writes
    std::uint64_t totalSoftmaxElems = 0;
    Bytes kvReadBytes = 0; ///< total K+V bytes the GEMVs consume
    int headsPerDevice = 1; ///< per-head kernel split for the baseline

    Flops
    flops() const
    {
        // Logit and attend each do one MAC per cached KV element.
        return 2.0 * static_cast<double>(kvReadBytes);
    }
};

/**
 * Everything one decoder layer needs for one iteration. A plan can be
 * decode-only (the generation phase, as before the phase model),
 * prefill-only, or mixed: the weight GEMMs carry
 * batch + prefillTokens activation rows, decode MHA runs as PIM GEMV
 * (or NPU streaming), and prefill attention runs NPU-side.
 */
struct LayerPlan
{
    std::vector<GemmWork> gemms; ///< QKV, projection, FFN up, FFN down
    MhaWork mha;                 ///< decode-phase attention (PIM GEMV)
    std::vector<PrefillAttnWork> prefillAttn; ///< NPU prefill attention
    std::uint64_t vectorElems = 0; ///< layer norms + residuals
    int batch = 0;         ///< decode-phase requests
    int prefillTokens = 0; ///< prompt tokens prefilled this iteration

    Flops gemmFlops() const;
    Bytes gemmWeightBytes() const;
    /** Total NPU-side prefill-attention FLOPs (logit + attend). */
    Flops prefillAttnFlops() const;
};

class Compiler
{
  public:
    Compiler(const LlmConfig &cfg, int tp, const MemShape &mem);

    const LlmConfig &model() const { return cfg_; }
    int tp() const { return tp_; }
    const MemShape &memShape() const { return mem_; }

    /**
     * Compile one generation-phase decoder layer for a batch whose
     * requests have been assigned to channels.
     *
     * Results are memoized keyed on the batch composition: every
     * decoder layer of a generation iteration executes the same
     * kernel graph, and successive serving iterations mostly repeat
     * compositions, so repeated calls return the cached plan. The
     * compiler's model/tp/memory geometry are immutable after
     * construction, which is what makes a cached plan valid forever;
     * see DESIGN.md §4 for the invalidation rule. The returned
     * reference stays valid until the cache evicts (bounded size,
     * cleared wholesale on overflow) — callers that outlive the next
     * compileLayer call must copy. Not thread-safe, like the rest of
     * the simulator.
     *
     * @param seq_lens_per_channel current KV length of every request,
     *        grouped by its PIM channel (index = ChannelId).
     */
    const LayerPlan &compileLayer(
        const std::vector<std::vector<int>> &seq_lens_per_channel) const;

    /**
     * Compile a mixed prefill+decode layer: decode requests as in
     * compileLayer, plus @p prefill slices whose prompt tokens join
     * the weight GEMMs as extra activation rows, emit NPU-side causal
     * attention work, and append their K/V vectors to their channel.
     * Decode-only calls (empty @p prefill) share compileLayer's cache
     * entries; an empty decode batch with non-empty prefill is valid
     * (a dedicated prefill iteration). Same memoization and lifetime
     * rules as compileLayer.
     */
    const LayerPlan &compileLayer(
        const std::vector<std::vector<int>> &seq_lens_per_channel,
        const std::vector<PrefillSliceSpec> &prefill) const;

    /** The NPU attention work of one prefill slice. */
    PrefillAttnWork prefillAttnWorkFor(
        const PrefillSliceSpec &slice) const;

    /** Compilation-cache statistics (engine benchmarks and tests). */
    std::uint64_t planCacheHits() const { return cacheHits_; }
    std::uint64_t planCacheMisses() const { return cacheMisses_; }

    /** Per-request logit GEMV tiles (Algorithm 1 numerator). */
    int logitRowTiles(int seq_len) const;
    /** Per-request attend GEMV tiles. */
    int attendRowTiles(int seq_len) const;

  private:
    /** Probe the plan cache with @p key; compile and insert on miss. */
    const LayerPlan &cachedPlan(
        const std::vector<std::vector<int>> &key,
        const std::vector<std::vector<int>> &seq_lens_per_channel,
        const std::vector<PrefillSliceSpec> &prefill) const;

    LayerPlan compileLayerUncached(
        const std::vector<std::vector<int>> &seq_lens_per_channel,
        const std::vector<PrefillSliceSpec> &prefill) const;

    LlmConfig cfg_;
    int tp_;
    MemShape mem_;

    /** Plans per distinct composition a compiler instance retains
     * before the cache is cleared wholesale. Serving sweeps see a
     * handful of live compositions at a time, so overflow is rare. */
    static constexpr std::size_t kMaxCachedPlans = 128;

    // Deterministic ordered map: the key is the composition itself,
    // so a hit can never alias a different batch.
    mutable std::map<std::vector<std::vector<int>>, LayerPlan> planCache_;
    mutable std::uint64_t cacheHits_ = 0;
    mutable std::uint64_t cacheMisses_ = 0;
};

} // namespace neupims::model

#endif // NEUPIMS_MODEL_COMPILER_H_
