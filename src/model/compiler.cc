#include "model/compiler.h"

#include "common/log.h"

namespace neupims::model {

namespace {

constexpr std::int64_t
ceilDiv(std::int64_t a, std::int64_t b)
{
    return (a + b - 1) / b;
}

} // namespace

Flops
LayerPlan::gemmFlops() const
{
    Flops total = 0.0;
    for (const auto &g : gemms)
        total += g.flops();
    return total;
}

Bytes
LayerPlan::gemmWeightBytes() const
{
    Bytes total = 0;
    for (const auto &g : gemms)
        total += g.weightBytes();
    return total;
}

Flops
LayerPlan::prefillAttnFlops() const
{
    Flops total = 0.0;
    for (const auto &p : prefillAttn)
        total += p.flops;
    return total;
}

Compiler::Compiler(const LlmConfig &cfg, int tp, const MemShape &mem)
    : cfg_(cfg), tp_(tp), mem_(mem)
{
    NEUPIMS_ASSERT(tp_ >= 1);
    NEUPIMS_ASSERT(cfg_.numHeads % tp_ == 0,
                   "tensor parallelism must divide heads: ", cfg_.name,
                   " tp=", tp_);
    NEUPIMS_ASSERT(mem_.channels >= 1 && mem_.pageBytes >= 64);
}

int
Compiler::logitRowTiles(int seq_len) const
{
    // K cache of one request on its channel: seq_len rows of d_dev
    // fp16 elements, row-interleaved across the banks; one bank-row
    // tile covers pageBytes of it. Matches Algorithm 1 line 2:
    // (seq/B_chnl) * (E/P_DRAM) tiles distributed over B_chnl banks.
    Bytes bytes = static_cast<Bytes>(seq_len) *
                  static_cast<Bytes>(cfg_.dModelPerDevice(tp_)) * 2;
    return static_cast<int>(ceilDiv(static_cast<std::int64_t>(bytes),
                                    static_cast<std::int64_t>(
                                        mem_.pageBytes)));
}

int
Compiler::attendRowTiles(int seq_len) const
{
    // V cache is the same byte volume, head-interleaved (Alg. 1 l.5).
    return logitRowTiles(seq_len);
}

const LayerPlan &
Compiler::compileLayer(
    const std::vector<std::vector<int>> &seq_lens_per_channel) const
{
    return compileLayer(seq_lens_per_channel, {});
}

const LayerPlan &
Compiler::compileLayer(
    const std::vector<std::vector<int>> &seq_lens_per_channel,
    const std::vector<PrefillSliceSpec> &prefill) const
{
    // Decode-only compositions keep their historical cache key and
    // probe with the caller's vector directly (the hot path — no key
    // copy on a cache hit); prefill slices extend the key behind a
    // sentinel row no sequence length can produce, so mixed plans
    // never alias decode plans.
    if (prefill.empty()) {
        return cachedPlan(seq_lens_per_channel, seq_lens_per_channel,
                          prefill);
    }
    std::vector<std::vector<int>> key = seq_lens_per_channel;
    key.push_back({-3}); // separator: decode | prefill
    for (const auto &s : prefill)
        key.push_back({s.channel, s.startToken, s.newTokens});
    return cachedPlan(key, seq_lens_per_channel, prefill);
}

const LayerPlan &
Compiler::cachedPlan(
    const std::vector<std::vector<int>> &key,
    const std::vector<std::vector<int>> &seq_lens_per_channel,
    const std::vector<PrefillSliceSpec> &prefill) const
{
    auto it = planCache_.find(key);
    if (it != planCache_.end()) {
        ++cacheHits_;
        return it->second;
    }
    ++cacheMisses_;
    if (planCache_.size() >= kMaxCachedPlans)
        planCache_.clear();
    auto [pos, inserted] = planCache_.emplace(
        key, compileLayerUncached(seq_lens_per_channel, prefill));
    NEUPIMS_ASSERT(inserted);
    return pos->second;
}

PrefillAttnWork
Compiler::prefillAttnWorkFor(const PrefillSliceSpec &slice) const
{
    NEUPIMS_ASSERT(slice.newTokens >= 1 && slice.startToken >= 0);
    const std::int64_t d_dev = cfg_.dModelPerDevice(tp_);
    const std::int64_t heads_dev = cfg_.headsPerDevice(tp_);

    PrefillAttnWork work;
    work.channel = slice.channel;
    work.newTokens = slice.newTokens;
    work.contextLen = slice.startToken + slice.newTokens;
    // Causal: new query row i (1-based within the slice) attends to
    // startToken + i keys, per device-resident head.
    const std::uint64_t n = static_cast<std::uint64_t>(slice.newTokens);
    work.softmaxElems =
        (n * static_cast<std::uint64_t>(slice.startToken) +
         n * (n + 1) / 2) *
        static_cast<std::uint64_t>(heads_dev);
    // Logit reads the K window, attend the V window (fp16).
    work.kvReadBytes = 2 * static_cast<Bytes>(work.contextLen) *
                       static_cast<Bytes>(d_dev) * 2;
    work.flops = work.logitShape(d_dev).flops() +
                 work.attendShape(d_dev).flops();
    return work;
}

LayerPlan
Compiler::compileLayerUncached(
    const std::vector<std::vector<int>> &seq_lens_per_channel,
    const std::vector<PrefillSliceSpec> &prefill) const
{
    NEUPIMS_ASSERT(static_cast<int>(seq_lens_per_channel.size()) <=
                   mem_.channels);

    LayerPlan plan;
    int channels = mem_.channels;
    plan.mha.requests.resize(channels);
    plan.mha.logit.resize(channels);
    plan.mha.attend.resize(channels);
    plan.mha.kvAppendBytes.assign(channels, 0);
    plan.mha.headsPerDevice =
        static_cast<int>(cfg_.headsPerDevice(tp_));

    const std::int64_t d = cfg_.dModel;
    const std::int64_t d_dev = cfg_.dModelPerDevice(tp_);
    const std::int64_t heads_dev = cfg_.headsPerDevice(tp_);
    const Bytes page = mem_.pageBytes;
    const Bytes burst = mem_.burstBytes;

    int batch = 0;
    for (ChannelId ch = 0;
         ch < static_cast<ChannelId>(seq_lens_per_channel.size());
         ++ch) {
        auto &logit = plan.mha.logit[ch];
        auto &attend = plan.mha.attend[ch];
        for (int seq : seq_lens_per_channel[ch]) {
            NEUPIMS_ASSERT(seq >= 1, "sequence length must be >= 1");
            ++batch;
            PimRequestWork req;
            req.seqLen = seq;

            req.logit.rowTiles = logitRowTiles(seq);
            // Query vector: d_dev fp16 elements staged in the global
            // vector buffer page by page (Alg. 1 line 3).
            req.logit.gwrites =
                static_cast<int>(ceilDiv(d_dev * 2, page));
            // Logit results: seq values per device-resident head.
            Bytes logit_bytes = static_cast<Bytes>(seq) *
                                static_cast<Bytes>(heads_dev) * 2;
            req.logit.resultBursts = static_cast<int>(
                ceilDiv(static_cast<std::int64_t>(logit_bytes),
                        static_cast<std::int64_t>(burst)));
            req.softmaxElems = static_cast<std::uint64_t>(seq) *
                               static_cast<std::uint64_t>(heads_dev);

            req.attend.rowTiles = attendRowTiles(seq);
            // Softmaxed logits staged per head (Alg. 1 line 6).
            req.attend.gwrites = static_cast<int>(
                ceilDiv(static_cast<std::int64_t>(logit_bytes),
                        static_cast<std::int64_t>(page)));
            // Attend results: one d_dev-wide context vector.
            req.attend.resultBursts =
                static_cast<int>(ceilDiv(d_dev * 2, burst));

            plan.mha.kvReadBytes += 2 * static_cast<Bytes>(seq) *
                                    static_cast<Bytes>(d_dev) * 2;

            logit.rowTiles += req.logit.rowTiles;
            logit.gwrites += req.logit.gwrites;
            logit.resultBursts += req.logit.resultBursts;
            logit.softmaxElems += req.softmaxElems;
            attend.rowTiles += req.attend.rowTiles;
            attend.gwrites += req.attend.gwrites;
            attend.resultBursts += req.attend.resultBursts;

            plan.mha.requests[ch].push_back(req);
        }
        // Each request appends one K and one V vector per layer.
        plan.mha.kvAppendBytes[ch] =
            static_cast<Bytes>(seq_lens_per_channel[ch].size()) *
            cfg_.kvBytesPerTokenPerLayer(tp_);
        plan.mha.totalSoftmaxElems += logit.softmaxElems;
    }

    plan.batch = batch;

    // Prefill slices: their prompt tokens join the weight GEMMs as
    // extra activation rows, their attention runs NPU-side, and their
    // fresh K/V vectors append to their channel's cache.
    for (const auto &slice : prefill) {
        NEUPIMS_ASSERT(slice.channel >= 0 &&
                           slice.channel < mem_.channels,
                       "prefill slice on invalid channel ",
                       slice.channel);
        PrefillAttnWork work = prefillAttnWorkFor(slice);
        plan.prefillTokens += slice.newTokens;
        plan.mha.kvAppendBytes[slice.channel] +=
            static_cast<Bytes>(slice.newTokens) *
            cfg_.kvBytesPerTokenPerLayer(tp_);
        plan.prefillAttn.push_back(work);
    }

    NEUPIMS_ASSERT(batch + plan.prefillTokens >= 1, "empty batch");

    // Every activation row — one per decode request, one per prefill
    // token — streams through the same weight GEMMs.
    const std::int64_t rows = batch + plan.prefillTokens;
    auto add_gemm = [&plan](std::string label, std::int64_t m,
                            std::int64_t k, std::int64_t n) {
        plan.gemms.push_back(GemmWork{std::move(label),
                                      npu::GemmShape{m, k, n}});
    };
    add_gemm("qkv_generation", rows, d, 3 * d_dev);
    add_gemm("projection", rows, d_dev, d);
    add_gemm("ffn_up", rows, d, cfg_.ffnDim() / tp_);
    add_gemm("ffn_down", rows, cfg_.ffnDim() / tp_, d);

    // Two layer norms, two residual adds over [rows, d] activations.
    plan.vectorElems = static_cast<std::uint64_t>(rows) *
                       static_cast<std::uint64_t>(d) * 4;
    return plan;
}

} // namespace neupims::model
