#include "model/compiler.h"

#include "common/log.h"

namespace neupims::model {

namespace {

constexpr std::int64_t
ceilDiv(std::int64_t a, std::int64_t b)
{
    return (a + b - 1) / b;
}

} // namespace

Flops
LayerPlan::gemmFlops() const
{
    Flops total = 0.0;
    for (const auto &g : gemms)
        total += g.flops();
    return total;
}

Bytes
LayerPlan::gemmWeightBytes() const
{
    Bytes total = 0;
    for (const auto &g : gemms)
        total += g.weightBytes();
    return total;
}

Compiler::Compiler(const LlmConfig &cfg, int tp, const MemShape &mem)
    : cfg_(cfg), tp_(tp), mem_(mem)
{
    NEUPIMS_ASSERT(tp_ >= 1);
    NEUPIMS_ASSERT(cfg_.numHeads % tp_ == 0,
                   "tensor parallelism must divide heads: ", cfg_.name,
                   " tp=", tp_);
    NEUPIMS_ASSERT(mem_.channels >= 1 && mem_.pageBytes >= 64);
}

int
Compiler::logitRowTiles(int seq_len) const
{
    // K cache of one request on its channel: seq_len rows of d_dev
    // fp16 elements, row-interleaved across the banks; one bank-row
    // tile covers pageBytes of it. Matches Algorithm 1 line 2:
    // (seq/B_chnl) * (E/P_DRAM) tiles distributed over B_chnl banks.
    Bytes bytes = static_cast<Bytes>(seq_len) *
                  static_cast<Bytes>(cfg_.dModelPerDevice(tp_)) * 2;
    return static_cast<int>(ceilDiv(static_cast<std::int64_t>(bytes),
                                    static_cast<std::int64_t>(
                                        mem_.pageBytes)));
}

int
Compiler::attendRowTiles(int seq_len) const
{
    // V cache is the same byte volume, head-interleaved (Alg. 1 l.5).
    return logitRowTiles(seq_len);
}

const LayerPlan &
Compiler::compileLayer(
    const std::vector<std::vector<int>> &seq_lens_per_channel) const
{
    auto it = planCache_.find(seq_lens_per_channel);
    if (it != planCache_.end()) {
        ++cacheHits_;
        return it->second;
    }
    ++cacheMisses_;
    if (planCache_.size() >= kMaxCachedPlans)
        planCache_.clear();
    auto [pos, inserted] = planCache_.emplace(
        seq_lens_per_channel,
        compileLayerUncached(seq_lens_per_channel));
    NEUPIMS_ASSERT(inserted);
    return pos->second;
}

LayerPlan
Compiler::compileLayerUncached(
    const std::vector<std::vector<int>> &seq_lens_per_channel) const
{
    NEUPIMS_ASSERT(static_cast<int>(seq_lens_per_channel.size()) <=
                   mem_.channels);

    LayerPlan plan;
    int channels = mem_.channels;
    plan.mha.requests.resize(channels);
    plan.mha.logit.resize(channels);
    plan.mha.attend.resize(channels);
    plan.mha.kvAppendBytes.assign(channels, 0);
    plan.mha.headsPerDevice =
        static_cast<int>(cfg_.headsPerDevice(tp_));

    const std::int64_t d = cfg_.dModel;
    const std::int64_t d_dev = cfg_.dModelPerDevice(tp_);
    const std::int64_t heads_dev = cfg_.headsPerDevice(tp_);
    const Bytes page = mem_.pageBytes;
    const Bytes burst = mem_.burstBytes;

    int batch = 0;
    for (ChannelId ch = 0;
         ch < static_cast<ChannelId>(seq_lens_per_channel.size());
         ++ch) {
        auto &logit = plan.mha.logit[ch];
        auto &attend = plan.mha.attend[ch];
        for (int seq : seq_lens_per_channel[ch]) {
            NEUPIMS_ASSERT(seq >= 1, "sequence length must be >= 1");
            ++batch;
            PimRequestWork req;
            req.seqLen = seq;

            req.logit.rowTiles = logitRowTiles(seq);
            // Query vector: d_dev fp16 elements staged in the global
            // vector buffer page by page (Alg. 1 line 3).
            req.logit.gwrites =
                static_cast<int>(ceilDiv(d_dev * 2, page));
            // Logit results: seq values per device-resident head.
            Bytes logit_bytes = static_cast<Bytes>(seq) *
                                static_cast<Bytes>(heads_dev) * 2;
            req.logit.resultBursts = static_cast<int>(
                ceilDiv(static_cast<std::int64_t>(logit_bytes),
                        static_cast<std::int64_t>(burst)));
            req.softmaxElems = static_cast<std::uint64_t>(seq) *
                               static_cast<std::uint64_t>(heads_dev);

            req.attend.rowTiles = attendRowTiles(seq);
            // Softmaxed logits staged per head (Alg. 1 line 6).
            req.attend.gwrites = static_cast<int>(
                ceilDiv(static_cast<std::int64_t>(logit_bytes),
                        static_cast<std::int64_t>(page)));
            // Attend results: one d_dev-wide context vector.
            req.attend.resultBursts =
                static_cast<int>(ceilDiv(d_dev * 2, burst));

            plan.mha.kvReadBytes += 2 * static_cast<Bytes>(seq) *
                                    static_cast<Bytes>(d_dev) * 2;

            logit.rowTiles += req.logit.rowTiles;
            logit.gwrites += req.logit.gwrites;
            logit.resultBursts += req.logit.resultBursts;
            logit.softmaxElems += req.softmaxElems;
            attend.rowTiles += req.attend.rowTiles;
            attend.gwrites += req.attend.gwrites;
            attend.resultBursts += req.attend.resultBursts;

            plan.mha.requests[ch].push_back(req);
        }
        // Each request appends one K and one V vector per layer.
        plan.mha.kvAppendBytes[ch] =
            static_cast<Bytes>(seq_lens_per_channel[ch].size()) *
            cfg_.kvBytesPerTokenPerLayer(tp_);
        plan.mha.totalSoftmaxElems += logit.softmaxElems;
    }

    NEUPIMS_ASSERT(batch >= 1, "empty batch");
    plan.batch = batch;

    auto add_gemm = [&plan](std::string label, std::int64_t m,
                            std::int64_t k, std::int64_t n) {
        plan.gemms.push_back(GemmWork{std::move(label),
                                      npu::GemmShape{m, k, n}});
    };
    add_gemm("qkv_generation", batch, d, 3 * d_dev);
    add_gemm("projection", batch, d_dev, d);
    add_gemm("ffn_up", batch, d, cfg_.ffnDim() / tp_);
    add_gemm("ffn_down", batch, cfg_.ffnDim() / tp_, d);

    // Two layer norms, two residual adds over [batch, d] activations.
    plan.vectorElems = static_cast<std::uint64_t>(batch) *
                       static_cast<std::uint64_t>(d) * 4;
    return plan;
}

} // namespace neupims::model
