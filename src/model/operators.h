/**
 * @file
 * Operator intermediate representation for decoder blocks (Fig. 1-3).
 *
 * The compiler front end lowers an LlmConfig into a sequence of
 * operators per decoder block. Weight-activation operators (QKV
 * generation, output projection, both FFN matrices) batch into GEMMs;
 * activation-activation operators (logit, attend) are per-request
 * GEMVs; softmax / layer norm / residual run on the vector units.
 */

#ifndef NEUPIMS_MODEL_OPERATORS_H_
#define NEUPIMS_MODEL_OPERATORS_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace neupims::model {

enum class OpKind : std::uint8_t
{
    QkvGeneration, ///< GEMM: [B, d] x [d, 3d/tp]
    Logit,         ///< GEMV per request/head: K^T q
    Softmax,       ///< vector op over logits
    Attend,        ///< GEMV per request/head: V^T softmax(logits)
    Projection,    ///< GEMM: [B, d/tp] x [d/tp, d]
    FfnUp,         ///< GEMM: [B, d] x [d, 4d/tp]
    FfnDown,       ///< GEMM: [B, 4d/tp] x [4d/tp, d]
    LayerNorm,     ///< vector op
    Residual,      ///< vector op
};

constexpr bool
isGemmOp(OpKind k)
{
    return k == OpKind::QkvGeneration || k == OpKind::Projection ||
           k == OpKind::FfnUp || k == OpKind::FfnDown;
}

constexpr bool
isGemvOp(OpKind k)
{
    return k == OpKind::Logit || k == OpKind::Attend;
}

constexpr bool
isVectorOp(OpKind k)
{
    return k == OpKind::Softmax || k == OpKind::LayerNorm ||
           k == OpKind::Residual;
}

constexpr std::string_view
opName(OpKind k)
{
    switch (k) {
      case OpKind::QkvGeneration: return "qkv_generation";
      case OpKind::Logit: return "logit";
      case OpKind::Softmax: return "softmax";
      case OpKind::Attend: return "attend";
      case OpKind::Projection: return "projection";
      case OpKind::FfnUp: return "ffn_up";
      case OpKind::FfnDown: return "ffn_down";
      case OpKind::LayerNorm: return "layer_norm";
      case OpKind::Residual: return "residual";
    }
    return "?";
}

/**
 * One operator instance with its tensor shape. For GEMM ops (m,k,n)
 * is the batched matrix product; for GEMV ops the shape is the
 * *per-request* matrix-vector product and `perRequest` is true; for
 * vector ops `elems` carries the element count.
 */
struct OpDesc
{
    OpKind kind = OpKind::QkvGeneration;
    std::int64_t m = 0;
    std::int64_t k = 0;
    std::int64_t n = 0;
    std::uint64_t elems = 0;
    bool perRequest = false;

    Flops
    flops() const
    {
        if (isVectorOp(kind))
            return static_cast<double>(elems);
        return 2.0 * static_cast<double>(m) * static_cast<double>(k) *
               static_cast<double>(n);
    }

    /** Bytes of the streamed (weight or activation-matrix) operand. */
    Bytes
    streamBytes() const
    {
        if (isVectorOp(kind))
            return 0;
        // Weight-activation GEMMs stream the [k x n] weight matrix;
        // activation-activation GEMVs stream the [m x k] K/V matrix
        // (there is no weight and no reuse, §2.1).
        if (isGemvOp(kind))
            return static_cast<Bytes>(m) * static_cast<Bytes>(k) * 2;
        return static_cast<Bytes>(k) * static_cast<Bytes>(n) * 2;
    }

    /** Arithmetic intensity in FLOPs per streamed byte (Fig. 4). */
    double
    arithmeticIntensity() const
    {
        Bytes b = streamBytes();
        return b ? flops() / static_cast<double>(b) : 0.0;
    }
};

} // namespace neupims::model

#endif // NEUPIMS_MODEL_OPERATORS_H_
