#include "model/decoder_block.h"

#include "common/log.h"

namespace neupims::model {

std::vector<OpDesc>
buildDecoderOps(const LlmConfig &cfg, int tp, int batch, Phase phase,
                std::int64_t seq_len)
{
    NEUPIMS_ASSERT(tp >= 1 && cfg.numHeads % tp == 0,
                   "heads must divide tp");
    NEUPIMS_ASSERT(batch >= 1 && seq_len >= 1);

    const std::int64_t d = cfg.dModel;
    const std::int64_t d_dev = cfg.dModelPerDevice(tp);
    const std::int64_t heads_dev = cfg.headsPerDevice(tp);
    // Rows fed to the batched GEMMs: every request contributes one
    // token per generation iteration, or the whole prompt during
    // summarization.
    const std::int64_t gemm_rows =
        phase == Phase::Summarization
            ? static_cast<std::int64_t>(batch) * seq_len
            : static_cast<std::int64_t>(batch);

    std::vector<OpDesc> ops;
    auto add = [&ops](OpDesc op) { ops.push_back(op); };

    add({OpKind::LayerNorm, 0, 0, 0,
         static_cast<std::uint64_t>(gemm_rows * d), false});
    add({OpKind::QkvGeneration, gemm_rows, d, 3 * d_dev, 0, false});

    if (phase == Phase::Summarization) {
        // Prompt attention batches too: logits are [seq x seq] per
        // head, computed as GEMMs against the fresh K/V.
        add({OpKind::Logit, seq_len * heads_dev, cfg.headDim(), seq_len,
             0, true});
        add({OpKind::Softmax, 0, 0, 0,
             static_cast<std::uint64_t>(batch) *
                 static_cast<std::uint64_t>(heads_dev * seq_len *
                                            seq_len),
             false});
        add({OpKind::Attend, seq_len * heads_dev, seq_len, cfg.headDim(),
             0, true});
    } else {
        // Generation: per-request matrix-vector products against the
        // cached K/V (no batching opportunity, §2.1).
        add({OpKind::Logit, seq_len, d_dev, 1, 0, true});
        add({OpKind::Softmax, 0, 0, 0,
             static_cast<std::uint64_t>(batch) *
                 static_cast<std::uint64_t>(heads_dev) *
                 static_cast<std::uint64_t>(seq_len),
             false});
        add({OpKind::Attend, d_dev, seq_len, 1, 0, true});
    }

    add({OpKind::Projection, gemm_rows, d_dev, d, 0, false});
    add({OpKind::Residual, 0, 0, 0,
         static_cast<std::uint64_t>(gemm_rows * d), false});
    add({OpKind::LayerNorm, 0, 0, 0,
         static_cast<std::uint64_t>(gemm_rows * d), false});
    add({OpKind::FfnUp, gemm_rows, d, cfg.ffnDim() / tp, 0, false});
    add({OpKind::FfnDown, gemm_rows, cfg.ffnDim() / tp, d, 0, false});
    add({OpKind::Residual, 0, 0, 0,
         static_cast<std::uint64_t>(gemm_rows * d), false});
    return ops;
}

Flops
blockFlops(const std::vector<OpDesc> &ops)
{
    Flops total = 0.0;
    for (const auto &op : ops)
        total += op.flops();
    return total;
}

Bytes
blockStreamBytes(const std::vector<OpDesc> &ops)
{
    Bytes total = 0;
    for (const auto &op : ops)
        total += op.streamBytes();
    return total;
}

} // namespace neupims::model
