/**
 * @file
 * Builds the operator sequence of one decoder block (Fig. 2) for a
 * given model, tensor-parallel degree, batch and phase.
 */

#ifndef NEUPIMS_MODEL_DECODER_BLOCK_H_
#define NEUPIMS_MODEL_DECODER_BLOCK_H_

#include <vector>

#include "model/llm_config.h"
#include "model/operators.h"

namespace neupims::model {

enum class Phase
{
    Summarization, ///< prompt encoding: everything batches into GEMMs
    Generation,    ///< autoregressive decode: MHA degrades to GEMVs
};

/**
 * Operator list for one decoder block on one device.
 *
 * @param cfg model architecture
 * @param tp tensor-parallel degree (weights and heads sharded)
 * @param batch requests in the batch (tokens in flight per iteration)
 * @param phase summarization or generation
 * @param seq_len context length: prompt length in summarization, the
 *        (average) KV history length in generation
 */
std::vector<OpDesc> buildDecoderOps(const LlmConfig &cfg, int tp,
                                    int batch, Phase phase,
                                    std::int64_t seq_len);

/** Sum of FLOPs over the block's operators. */
Flops blockFlops(const std::vector<OpDesc> &ops);

/** Sum of streamed bytes over the block's operators. */
Bytes blockStreamBytes(const std::vector<OpDesc> &ops);

} // namespace neupims::model

#endif // NEUPIMS_MODEL_DECODER_BLOCK_H_
