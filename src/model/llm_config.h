/**
 * @file
 * LLM architecture configurations (paper Table 3) and derived shape
 * arithmetic: parameter counts, per-device weight footprints under
 * tensor parallelism, and KV-cache geometry.
 */

#ifndef NEUPIMS_MODEL_LLM_CONFIG_H_
#define NEUPIMS_MODEL_LLM_CONFIG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace neupims::model {

struct LlmConfig
{
    std::string name;
    int numLayers = 0;
    int numHeads = 0;
    std::int64_t dModel = 0;
    int defaultTp = 1; ///< Table 3 tensor-parallel degree
    int defaultPp = 1; ///< Table 3 pipeline-parallel degree
    int bytesPerParam = 2; ///< fp16/bf16 inference

    std::int64_t headDim() const { return dModel / numHeads; }
    std::int64_t ffnDim() const { return 4 * dModel; }

    /** Heads served by one device under tensor parallelism @p tp. */
    int headsPerDevice(int tp) const { return numHeads / tp; }

    /** Decoder layers resident on one device under pipeline depth. */
    int layersPerDevice(int pp) const { return numLayers / pp; }

    /**
     * Weight parameters of one decoder block: QKV (3 d^2), attention
     * output projection (d^2) and the two FFN matrices (2 x 4 d^2).
     */
    std::int64_t
    paramsPerLayer() const
    {
        return 12 * dModel * dModel;
    }

    std::int64_t
    totalParams() const
    {
        return paramsPerLayer() * numLayers;
    }

    /** Per-device weight bytes of one decoder block under TP. */
    Bytes
    weightBytesPerLayer(int tp) const
    {
        return static_cast<Bytes>(paramsPerLayer() / tp) *
               static_cast<Bytes>(bytesPerParam);
    }

    /** Per-device KV-cache bytes appended per token per layer (K+V). */
    Bytes
    kvBytesPerTokenPerLayer(int tp) const
    {
        return static_cast<Bytes>(2 * dModel / tp) *
               static_cast<Bytes>(bytesPerParam);
    }

    /** Per-device embedding width under tensor parallelism. */
    std::int64_t dModelPerDevice(int tp) const { return dModel / tp; }
};

/** Table 3 models. */
LlmConfig gpt3_7b();
LlmConfig gpt3_13b();
LlmConfig gpt3_30b();
LlmConfig gpt3_175b();
std::vector<LlmConfig> allGpt3Models();

/** Figure 5 models (GPU-utilization study). */
LlmConfig gptNeoX20b();
LlmConfig llama2_13b();
LlmConfig opt_30b();
LlmConfig mpt_30b();
std::vector<LlmConfig> figure5Models();

/** Look up any known model by name; fatal() on unknown names. */
LlmConfig modelByName(const std::string &name);

} // namespace neupims::model

#endif // NEUPIMS_MODEL_LLM_CONFIG_H_
