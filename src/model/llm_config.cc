#include "model/llm_config.h"

#include "common/log.h"

namespace neupims::model {

LlmConfig
gpt3_7b()
{
    return LlmConfig{"GPT3-7B", 32, 32, 4096, 4, 1};
}

LlmConfig
gpt3_13b()
{
    return LlmConfig{"GPT3-13B", 40, 40, 5120, 4, 1};
}

LlmConfig
gpt3_30b()
{
    return LlmConfig{"GPT3-30B", 48, 56, 7168, 4, 2};
}

LlmConfig
gpt3_175b()
{
    return LlmConfig{"GPT3-175B", 96, 96, 12288, 8, 4};
}

std::vector<LlmConfig>
allGpt3Models()
{
    return {gpt3_7b(), gpt3_13b(), gpt3_30b(), gpt3_175b()};
}

LlmConfig
gptNeoX20b()
{
    return LlmConfig{"GPT-NeoX", 44, 64, 6144, 4, 1};
}

LlmConfig
llama2_13b()
{
    return LlmConfig{"LLaMa2", 40, 40, 5120, 4, 1};
}

LlmConfig
opt_30b()
{
    return LlmConfig{"OPT", 48, 56, 7168, 4, 1};
}

LlmConfig
mpt_30b()
{
    return LlmConfig{"MPT", 48, 64, 7168, 4, 1};
}

std::vector<LlmConfig>
figure5Models()
{
    return {gptNeoX20b(), llama2_13b(), opt_30b(), mpt_30b()};
}

LlmConfig
modelByName(const std::string &name)
{
    for (const auto &m : allGpt3Models()) {
        if (m.name == name)
            return m;
    }
    for (const auto &m : figure5Models()) {
        if (m.name == name)
            return m;
    }
    fatal("unknown model: ", name);
}

} // namespace neupims::model
