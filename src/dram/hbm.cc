#include "dram/hbm.h"

namespace neupims::dram {

HbmStack::HbmStack(EventQueue &eq, const MemConfig &cfg)
    : HbmStack(eq, cfg, SymmetryGroups::identity(cfg.org.channels))
{}

HbmStack::HbmStack(EventQueue &eq, const MemConfig &cfg,
                   SymmetryGroups groups)
    : eq_(eq), cfg_(cfg), groups_(std::move(groups))
{
    NEUPIMS_ASSERT(static_cast<int>(groups_.representative.size()) ==
                   cfg_.org.channels);
    ctrls_.resize(cfg_.org.channels);
    for (int c = 0; c < cfg_.org.channels; ++c) {
        ChannelId rep = groups_.representative[c];
        NEUPIMS_ASSERT(rep >= 0 && rep < cfg_.org.channels &&
                           groups_.representative[rep] == rep,
                       "malformed symmetry groups at channel ", c);
        if (rep == c) {
            ctrls_[c] = std::make_unique<MemoryController>(
                eq_, cfg_.timing, cfg_.org, cfg_.ctrl);
        }
    }
}

bool
HbmStack::idle() const
{
    for (const auto &c : ctrls_) {
        if (c && !c->idle())
            return false;
    }
    return true;
}

// The aggregate walks every logical channel through controller(), so a
// folded member contributes its representative's (bit-identical) value
// in the same summation order as the unfolded simulation — keeping
// floating-point accumulations exactly equal with the fast path on or
// off.

Bytes
HbmStack::totalDataBusBytes() const
{
    Bytes total = 0;
    for (ChannelId ch = 0; ch < numChannels(); ++ch)
        total += controller(ch).channel().dataBusBytes();
    return total;
}

CommandCounts
HbmStack::totalCommandCounts() const
{
    CommandCounts total;
    for (ChannelId ch = 0; ch < numChannels(); ++ch) {
        const auto &counts = controller(ch).channel().commandCounts();
        for (int i = 0; i < kNumCommandTypes; ++i)
            total.counts[i] += counts.counts[i];
    }
    return total;
}

Cycle
HbmStack::totalPimBankBusyCycles() const
{
    double total = 0.0;
    for (ChannelId ch = 0; ch < numChannels(); ++ch)
        total += controller(ch).pimBankBusyCycles().value();
    return static_cast<Cycle>(total);
}

MemSchedStats
HbmStack::totalMemSchedStats() const
{
    MemSchedStats total;
    for (ChannelId ch = 0; ch < numChannels(); ++ch) {
        const auto &s = controller(ch).memSchedStats();
        total.rowHits += s.rowHits;
        total.rowMisses += s.rowMisses;
        total.rowConflicts += s.rowConflicts;
        total.memCommands += s.memCommands;
        total.pimCommands += s.pimCommands;
        total.modeSwitches += s.modeSwitches;
        total.pimStallCycles += s.pimStallCycles;
        total.pimWasteCycles += s.pimWasteCycles;
    }
    return total;
}

double
HbmStack::memBankUtilization(Cycle window_start, Cycle window_end) const
{
    if (window_end <= window_start)
        return 0.0;
    double busy = 0.0;
    double banks = 0.0;
    for (ChannelId ch = 0; ch < numChannels(); ++ch) {
        for (Cycle c : controller(ch).memBankBusyCycles())
            busy += static_cast<double>(c);
        banks += static_cast<double>(cfg_.org.banksPerChannel);
    }
    return busy /
           (banks * static_cast<double>(window_end - window_start));
}

double
HbmStack::dataBusUtilization(Cycle window_start, Cycle window_end)
{
    double sum = 0.0;
    for (ChannelId ch = 0; ch < numChannels(); ++ch)
        sum += controller(ch).channel().dataBusUtil().utilization(
            window_start, window_end);
    return sum / static_cast<double>(numChannels());
}

double
HbmStack::pimUtilization(Cycle window_start, Cycle window_end) const
{
    if (window_end <= window_start)
        return 0.0;
    double busy = static_cast<double>(totalPimBankBusyCycles());
    double capacity =
        static_cast<double>(window_end - window_start) *
        pimCapacityBanks();
    return busy / capacity;
}

ChannelActivity
HbmStack::channelActivity(ChannelId ch, Cycle window) const
{
    const auto &ctrl = controller(ch);
    ChannelActivity a;
    a.windowCycles = window;
    a.counts = ctrl.channel().commandCounts();
    a.pimBankBusyCycles =
        static_cast<Cycle>(ctrl.pimBankBusyCycles().value());
    a.dualRowBuffers = ctrl.config().dualRowBuffers;
    return a;
}

} // namespace neupims::dram
