#include "dram/hbm.h"

namespace neupims::dram {

HbmStack::HbmStack(EventQueue &eq, const MemConfig &cfg)
    : eq_(eq), cfg_(cfg)
{
    ctrls_.reserve(cfg.org.channels);
    for (int c = 0; c < cfg.org.channels; ++c) {
        ctrls_.push_back(std::make_unique<MemoryController>(
            eq_, cfg_.timing, cfg_.org, cfg_.ctrl));
    }
}

bool
HbmStack::idle() const
{
    for (const auto &c : ctrls_) {
        if (!c->idle())
            return false;
    }
    return true;
}

Bytes
HbmStack::totalDataBusBytes() const
{
    Bytes total = 0;
    for (const auto &c : ctrls_)
        total += c->channel().dataBusBytes();
    return total;
}

CommandCounts
HbmStack::totalCommandCounts() const
{
    CommandCounts total;
    for (const auto &c : ctrls_) {
        const auto &counts = c->channel().commandCounts();
        for (int i = 0; i < kNumCommandTypes; ++i)
            total.counts[i] += counts.counts[i];
    }
    return total;
}

Cycle
HbmStack::totalPimBankBusyCycles() const
{
    double total = 0.0;
    for (const auto &c : ctrls_)
        total += c->pimBankBusyCycles().value();
    return static_cast<Cycle>(total);
}

double
HbmStack::dataBusUtilization(Cycle window_start, Cycle window_end)
{
    double sum = 0.0;
    for (auto &c : ctrls_)
        sum += c->channel().dataBusUtil().utilization(window_start,
                                                      window_end);
    return sum / static_cast<double>(ctrls_.size());
}

double
HbmStack::pimUtilization(Cycle window_start, Cycle window_end) const
{
    if (window_end <= window_start)
        return 0.0;
    double busy = static_cast<double>(totalPimBankBusyCycles());
    double capacity =
        static_cast<double>(window_end - window_start) *
        pimCapacityBanks();
    return busy / capacity;
}

ChannelActivity
HbmStack::channelActivity(ChannelId ch, Cycle window) const
{
    const auto &ctrl = *ctrls_.at(ch);
    ChannelActivity a;
    a.windowCycles = window;
    a.counts = ctrl.channel().commandCounts();
    a.pimBankBusyCycles =
        static_cast<Cycle>(ctrl.pimBankBusyCycles().value());
    a.dualRowBuffers = ctrl.config().dualRowBuffers;
    return a;
}

} // namespace neupims::dram
