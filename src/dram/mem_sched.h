/**
 * @file
 * Pluggable DRAM arbitration policies for the per-channel controller.
 *
 * The MemoryController owns the command state machines (what a MEM row
 * job or PIM kernel *can* issue next and when); a MemSchedPolicy owns
 * the *choice* between the two classes when both have a legal command.
 * Three built-ins reproduce the policy space of the PIM-scheduling
 * literature (see DESIGN.md §11):
 *
 *  - FrFcfs: the original arbitration, bit-identical to the historical
 *    controller — earliest candidate issues, PIM wins ties (§5.3).
 *    Golden-locked by tests/core/test_golden_executor.cc.
 *  - PimFrFcfs: PIM commands drain at priority even when a MEM command
 *    is ready earlier, except that (a) MEM row *hits* always pass (they
 *    disturb no row buffer — the row-buffer-friendly rule of the
 *    Sacusa pim_frfcfs scheduler) and (b) a starvation cap bounds the
 *    number of consecutively deferred MEM decisions.
 *  - Paws: PAWS-style cap-and-switch — the channel alternates between
 *    an explicit PIM mode and MEM mode. A PIM stint ends after
 *    `pawsPimCap` PIM commands (with MEM work waiting); the MEM stint
 *    budget is the backlog captured at switch time, extensible while
 *    the head MEM job is a hot-bin row hit but hard-capped at twice
 *    the budget so neither class can starve.
 *
 * Every policy also carries the channel's scheduling statistics: row
 * hit/miss/conflict classification of MEM jobs, per-class command
 * counts, MEM<->PIM mode switches, and the two contention integrals —
 * pimStallCycles (PIM command ready but a later MEM command was chosen)
 * and pimWasteCycles (bus held for a later PIM command while MEM work
 * was ready). Under FrFcfs both integrals are identically zero, which
 * the property tests pin.
 */

#ifndef NEUPIMS_DRAM_MEM_SCHED_H_
#define NEUPIMS_DRAM_MEM_SCHED_H_

#include <array>
#include <cstdint>
#include <memory>
#include <string>

#include "common/types.h"

namespace neupims::dram {

enum class MemSchedKind { FrFcfs, PimFrFcfs, Paws };

/** Canonical CLI/JSON names: "frfcfs", "pim-frfcfs", "paws". */
const char *memSchedKindName(MemSchedKind kind);

/** Parse a canonical name; returns false (and leaves @p out) on junk. */
bool parseMemSchedKind(const std::string &name, MemSchedKind &out);

/** Tuning knobs, embedded in ControllerConfig. */
struct MemSchedConfig
{
    MemSchedKind kind = MemSchedKind::FrFcfs;
    /**
     * PimFrFcfs: maximum consecutive decisions in which a ready MEM
     * command is deferred behind a later PIM command before one MEM
     * command is force-issued.
     */
    int pimStarveCap = 8;
    /**
     * Paws: PIM commands per PIM-mode stint before the channel
     * switches to MEM mode (when MEM work is waiting).
     */
    int pawsPimCap = 48;
    /** Paws: bin access count at which a row counts as "hot". */
    int pawsBinHot = 2;
};

/** How a MEM job found its bank's MEM-side row buffer on first issue. */
enum class RowOutcome { Hit, Miss, Conflict };

/** Scheduling statistics, owned by the policy instance. */
struct MemSchedStats
{
    std::uint64_t rowHits = 0;      ///< MEM job found its row open
    std::uint64_t rowMisses = 0;    ///< bank closed: ACT needed
    std::uint64_t rowConflicts = 0; ///< other row open: PRE + ACT
    std::uint64_t memCommands = 0;  ///< MEM sub-commands issued
    std::uint64_t pimCommands = 0;  ///< PIM sub-commands issued
    std::uint64_t modeSwitches = 0; ///< Paws MEM<->PIM transitions
    /** Sum over decisions of (mem issue - pim candidate) when a ready
     * PIM command was deferred behind a later MEM command. */
    Cycle pimStallCycles = 0;
    /** Sum over decisions of (pim issue - mem candidate) when the bus
     * waited for a PIM command while MEM work was ready earlier. */
    Cycle pimWasteCycles = 0;

    std::uint64_t
    classifiedMemJobs() const
    {
        return rowHits + rowMisses + rowConflicts;
    }
    double
    rowHitRate() const
    {
        std::uint64_t n = classifiedMemJobs();
        return n ? static_cast<double>(rowHits) / static_cast<double>(n)
                 : 0.0;
    }
};

/** Snapshot of one arbitration decision (both classes have a legal
 * command; cycles are the earliest each could issue). */
struct ArbView
{
    Cycle cm = kCycleMax;  ///< earliest MEM candidate
    Cycle cp = kCycleMax;  ///< earliest PIM candidate
    Cycle now = 0;
    bool memIsRowHit = false; ///< chosen MEM candidate hits its open row
    BankId memBank = 0;       ///< bank of the chosen MEM candidate
    int memRow = 0;           ///< row of the chosen MEM candidate
    std::size_t memPending = 0; ///< queued + in-flight MEM jobs
    std::size_t pimPending = 0; ///< queued + active PIM kernels
};

class MemSchedPolicy
{
  public:
    virtual ~MemSchedPolicy() = default;

    virtual MemSchedKind kind() const = 0;
    const char *name() const { return memSchedKindName(kind()); }

    /**
     * Decide the class of the next issued command. Called only when
     * both classes have a candidate; the controller auto-picks the
     * only live class otherwise (so a policy can bias, but never block
     * the channel's only available work — starvation-freedom by
     * construction at the "one class left" boundary).
     */
    virtual bool choosePim(const ArbView &v) = 0;

    /** Account an issued command (both arbitrated and auto-picked). */
    void recordIssue(const ArbView &v, bool picked_pim);

    /** Account the first-issue row-buffer outcome of a MEM job. */
    void noteRowOutcome(BankId bank, int row, RowOutcome outcome);

    /** Account a MEM job's completion (Paws stint budgets). */
    void
    noteMemJobCompleted()
    {
        onMemJobCompleted();
    }

    const MemSchedStats &stats() const { return stats_; }

    /** Recent access count of @p row's bin on @p bank (row-locality
     * estimate; bins halve on every Paws mode switch). */
    std::uint32_t
    binCount(BankId bank, int row) const
    {
        return bins_[static_cast<std::size_t>(bank) % kMaxBanks]
                    [static_cast<std::size_t>(row) % kBinsPerBank];
    }

  protected:
    virtual void onIssue(const ArbView &v, bool picked_pim)
    {
        (void)v;
        (void)picked_pim;
    }
    virtual void onMemJobCompleted() {}

    void decayBins();

    MemSchedStats stats_;

  private:
    static constexpr std::size_t kMaxBanks = 64;
    static constexpr std::size_t kBinsPerBank = 16;
    std::array<std::array<std::uint32_t, kBinsPerBank>, kMaxBanks>
        bins_ = {};
};

std::unique_ptr<MemSchedPolicy> makeMemSchedPolicy(const MemSchedConfig &cfg);

} // namespace neupims::dram

#endif // NEUPIMS_DRAM_MEM_SCHED_H_
