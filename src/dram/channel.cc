#include "dram/channel.h"

#include <algorithm>

#include "common/log.h"

namespace neupims::dram {

Channel::Channel(const TimingParams &timing, const Organization &org,
                 bool dual_row_buffers)
    : timing_(&timing), org_(&org), dualRowBuffers_(dual_row_buffers),
      banks_(timing, dual_row_buffers, org.banksPerChannel),
      lastActPerGroup_(org.bankGroups(), 0), nextRefresh_(timing.tREFI)
{}

Cycle
Channel::earliestCa(Cycle not_before, Cycle) const
{
    return std::max(not_before, caNextFree_);
}

Cycle
Channel::actWindowConstraint(BankId bank, Cycle not_before) const
{
    // Activation times are stored shifted by +1 so that 0 can mean
    // "no previous activation" even when the first ACT lands at
    // cycle 0.
    const auto &t = *timing_;
    Cycle when = not_before;
    // tFAW: at most 4 activations per sliding window. The ring holds
    // the last four ACT cycles; the next ACT must wait until the
    // oldest leaves the window.
    Cycle oldest = actRing_[actRingHead_];
    if (oldest > 0)
        when = std::max(when, (oldest - 1) + t.tFAW);
    // tRRD: ACT-to-ACT spacing, long within a bank group.
    if (lastActAny_ > 0)
        when = std::max(when, (lastActAny_ - 1) + t.tRRD_S);
    Cycle group_last = lastActPerGroup_[bankGroup(bank)];
    if (group_last > 0)
        when = std::max(when, (group_last - 1) + t.tRRD_L);
    return when;
}

void
Channel::recordActivate(BankId bank, Cycle when)
{
    actRing_[actRingHead_] = when + 1;
    actRingHead_ = (actRingHead_ + 1) % static_cast<int>(actRing_.size());
    lastActAny_ = std::max(lastActAny_, when + 1);
    lastActPerGroup_[bankGroup(bank)] =
        std::max(lastActPerGroup_[bankGroup(bank)], when + 1);
}

Cycle
Channel::earliestActivate(BankId bank, BufferSide side,
                          Cycle not_before) const
{
    Cycle when = banks_.earliestActivate(bank, side);
    when = std::max(when, not_before);
    when = actWindowConstraint(bank, when);
    when = std::max(when, caNextFree_);
    return when;
}

Cycle
Channel::earliestColumn(BankId bank, BufferSide side, bool,
                        Cycle not_before) const
{
    Cycle when = banks_.earliestColumn(bank, side);
    when = std::max(when, not_before);
    when = std::max(when, caNextFree_);
    return when;
}

Cycle
Channel::issueActivate(BankId bank, BufferSide side, int row,
                       Cycle not_before)
{
    const auto &t = *timing_;
    Cycle when = earliestActivate(bank, side, not_before);
    banks_.activate(bank, side, row, when);
    recordActivate(bank, when);
    caNextFree_ = when + t.caMemCmd;
    caBusUtil_.addBusy(when, when + t.caMemCmd);
    counts_.record(side == BufferSide::Pim ? CommandType::PimActivate
                                           : CommandType::Act);
    return when;
}

std::pair<Cycle, Cycle>
Channel::issueRead(BankId bank, BufferSide side, Cycle not_before)
{
    const auto &t = *timing_;
    Cycle when = earliestColumn(bank, side, false, not_before);
    // The data burst lands tCL after the column command and must find
    // the data bus free; push the issue cycle until it does.
    Cycle burst_start = std::max(when + t.tCL, dataNextFree_);
    when = burst_start - t.tCL;
    banks_.read(bank, side, when);
    caNextFree_ = when + t.caMemCmd;
    caBusUtil_.addBusy(when, when + t.caMemCmd);
    dataNextFree_ = burst_start + t.tBL;
    dataBusUtil_.addBusy(burst_start, burst_start + t.tBL);
    dataBusBytes_ += org_->burstBytes;
    counts_.record(CommandType::Rd);
    return {when, burst_start + t.tBL};
}

std::pair<Cycle, Cycle>
Channel::issueWrite(BankId bank, BufferSide side, Cycle not_before)
{
    const auto &t = *timing_;
    Cycle when = earliestColumn(bank, side, true, not_before);
    Cycle burst_start = std::max(when + t.tCWL, dataNextFree_);
    when = burst_start - t.tCWL;
    banks_.write(bank, side, when);
    caNextFree_ = when + t.caMemCmd;
    caBusUtil_.addBusy(when, when + t.caMemCmd);
    dataNextFree_ = burst_start + t.tBL;
    dataBusUtil_.addBusy(burst_start, burst_start + t.tBL);
    dataBusBytes_ += org_->burstBytes;
    counts_.record(CommandType::Wr);
    return {when, burst_start + t.tBL};
}

Cycle
Channel::issuePrecharge(BankId bank, BufferSide side, Cycle not_before)
{
    const auto &t = *timing_;
    Cycle when = std::max(not_before,
                          banks_.earliestPrecharge(bank, side));
    when = std::max(when, caNextFree_);
    banks_.precharge(bank, side, when);
    caNextFree_ = when + t.caMemCmd;
    caBusUtil_.addBusy(when, when + t.caMemCmd);
    counts_.record(side == BufferSide::Pim ? CommandType::PimPrecharge
                                           : CommandType::Pre);
    return when;
}

Cycle
Channel::issueRefresh(Cycle not_before)
{
    const auto &t = *timing_;
    // All banks must be precharged; wait for every bank to be
    // precharge-ready, then precharge implicitly (REF closes rows).
    Cycle when = std::max(not_before, caNextFree_);
    when = std::max(when, banks_.maxEarliestPrecharge());
    banks_.refreshAll(when);
    caNextFree_ = when + t.caMemCmd;
    caBusUtil_.addBusy(when, when + t.caMemCmd);
    counts_.record(CommandType::Ref);
    nextRefresh_ += t.tREFI * (1 + postponedRefreshes_);
    postponedRefreshes_ = 0;
    return when + t.tRFC;
}

Cycle
Channel::earliestPimActivateGroup(BankId first, int nbanks,
                                  Cycle not_before, bool needs_ca) const
{
    Cycle when = not_before;
    for (int i = 0; i < nbanks; ++i)
        when = std::max(when, banks_.earliestActivate(
                                  first + i, BufferSide::Pim));
    when = actWindowConstraint(first, when);
    if (needs_ca)
        when = std::max(when, caNextFree_);
    return when;
}

Cycle
Channel::issuePimActivateGroup(BankId first, int nbanks, int row,
                               Cycle not_before, bool charge_ca)
{
    const auto &t = *timing_;
    NEUPIMS_ASSERT(first + nbanks <= numBanks());
    Cycle when = earliestPimActivateGroup(first, nbanks, not_before,
                                          charge_ca);
    for (int i = 0; i < nbanks; ++i)
        banks_.activate(first + i, BufferSide::Pim, row, when);
    recordActivate(first, when);
    if (charge_ca) {
        caNextFree_ = when + t.caPimCmd;
        caBusUtil_.addBusy(when, when + t.caPimCmd);
        counts_.record(CommandType::PimActivate);
    }
    return when;
}

bool
Channel::postponeRefresh()
{
    // JEDEC allows postponing up to 8 refresh commands.
    if (postponedRefreshes_ >= 8)
        return false;
    ++postponedRefreshes_;
    nextRefresh_ += timing_->tREFI;
    return true;
}

Cycle
Channel::issuePimCaCommand(CommandType type, Cycle not_before)
{
    const auto &t = *timing_;
    Cycle when = std::max(not_before, caNextFree_);
    caNextFree_ = when + t.caPimCmd;
    caBusUtil_.addBusy(when, when + t.caPimCmd);
    counts_.record(type);
    return when;
}

std::pair<Cycle, Cycle>
Channel::reserveDataBus(Cycle not_before, int bursts)
{
    const auto &t = *timing_;
    Cycle start = std::max(not_before, dataNextFree_);
    Cycle end = start + t.tBL * static_cast<Cycle>(bursts);
    dataNextFree_ = end;
    dataBusUtil_.addBusy(start, end);
    dataBusBytes_ += org_->burstBytes * static_cast<Bytes>(bursts);
    return {start, end};
}

} // namespace neupims::dram
