#include "dram/mem_sched.h"

#include <algorithm>

#include "common/types.h"

namespace neupims::dram {

const char *
memSchedKindName(MemSchedKind kind)
{
    switch (kind) {
      case MemSchedKind::FrFcfs:
        return "frfcfs";
      case MemSchedKind::PimFrFcfs:
        return "pim-frfcfs";
      case MemSchedKind::Paws:
        return "paws";
    }
    return "frfcfs";
}

bool
parseMemSchedKind(const std::string &name, MemSchedKind &out)
{
    if (name == "frfcfs") {
        out = MemSchedKind::FrFcfs;
        return true;
    }
    if (name == "pim-frfcfs") {
        out = MemSchedKind::PimFrFcfs;
        return true;
    }
    if (name == "paws") {
        out = MemSchedKind::Paws;
        return true;
    }
    return false;
}

void
MemSchedPolicy::recordIssue(const ArbView &v, bool picked_pim)
{
    if (picked_pim) {
        ++stats_.pimCommands;
        if (v.cm < v.cp)
            stats_.pimWasteCycles += v.cp - v.cm;
    } else {
        ++stats_.memCommands;
        if (v.cp < v.cm)
            stats_.pimStallCycles += v.cm - v.cp;
    }
    onIssue(v, picked_pim);
}

void
MemSchedPolicy::noteRowOutcome(BankId bank, int row, RowOutcome outcome)
{
    switch (outcome) {
      case RowOutcome::Hit:
        ++stats_.rowHits;
        break;
      case RowOutcome::Miss:
        ++stats_.rowMisses;
        break;
      case RowOutcome::Conflict:
        ++stats_.rowConflicts;
        break;
    }
    auto &bin = bins_[static_cast<std::size_t>(bank) % kMaxBanks]
                     [static_cast<std::size_t>(row) % kBinsPerBank];
    if (bin < UINT32_MAX)
        ++bin;
}

void
MemSchedPolicy::decayBins()
{
    for (auto &bank : bins_)
        for (auto &bin : bank)
            bin >>= 1;
}

namespace {

/**
 * The historical arbitration, extracted verbatim: earliest candidate
 * issues, PIM wins ties (§5.3). The executor golden pins this choice
 * function bit-for-bit against the pre-refactor controller.
 */
class FrFcfsPolicy final : public MemSchedPolicy
{
  public:
    MemSchedKind kind() const override { return MemSchedKind::FrFcfs; }

    bool
    choosePim(const ArbView &v) override
    {
        return v.cp <= v.cm;
    }
};

/**
 * PIM-priority FR-FCFS (Sacusa pim_frfcfs shape): an active kernel's
 * commands drain ahead of MEM activates/precharges, but MEM row hits
 * pass untouched and a cap on consecutively deferred MEM decisions
 * guarantees forward progress for the MEM stream.
 */
class PimFrFcfsPolicy final : public MemSchedPolicy
{
  public:
    explicit PimFrFcfsPolicy(const MemSchedConfig &cfg) : cfg_(cfg) {}

    MemSchedKind kind() const override { return MemSchedKind::PimFrFcfs; }

    bool
    choosePim(const ArbView &v) override
    {
        if (v.cp <= v.cm)
            return true; // PIM is earliest anyway (FR-FCFS agrees)
        if (v.memIsRowHit)
            return false; // row hits cost no row-buffer state: let pass
        if (deferred_ >= cfg_.pimStarveCap)
            return false; // starvation cap: force one MEM service
        return true;      // drain the kernel at priority
    }

  protected:
    void
    onIssue(const ArbView &v, bool picked_pim) override
    {
        if (!picked_pim)
            deferred_ = 0;
        else if (v.cm < v.cp)
            ++deferred_; // a ready MEM command waited for this
    }

  private:
    MemSchedConfig cfg_;
    int deferred_ = 0;
};

/**
 * PAWS-style cap-and-switch (GPGPU-Sim dram_sched_paws shape): the
 * channel runs in an explicit mode. A PIM stint is capped at
 * `pawsPimCap` commands once MEM work waits; the MEM stint budget is
 * the job backlog captured at switch time — drain what accumulated,
 * no more — extensible while the head MEM job hits a hot row bin but
 * hard-capped at 2x the budget. Both caps bound every stint, so
 * neither class can be starved.
 */
class PawsPolicy final : public MemSchedPolicy
{
  public:
    explicit PawsPolicy(const MemSchedConfig &cfg) : cfg_(cfg) {}

    MemSchedKind kind() const override { return MemSchedKind::Paws; }

    bool
    choosePim(const ArbView &v) override
    {
        updateMode(v);
        return mode_ == Mode::Pim;
    }

  protected:
    void
    onIssue(const ArbView &v, bool picked_pim) override
    {
        (void)v;
        if (picked_pim)
            ++pimCmdsThisStint_;
    }

    void
    onMemJobCompleted() override
    {
        ++memJobsThisStint_;
    }

  private:
    enum class Mode { Mem, Pim };

    void
    updateMode(const ArbView &v)
    {
        // choosePim() runs only when both classes have work, so the
        // "other class empty" transitions never deadlock here.
        if (mode_ == Mode::Pim) {
            if (cfg_.pawsPimCap > 0 &&
                pimCmdsThisStint_ >= cfg_.pawsPimCap)
                switchTo(Mode::Mem, v);
        } else {
            bool exhausted = memJobsThisStint_ >= memStintBudget_;
            bool hot_extension =
                v.memIsRowHit &&
                binCount(v.memBank, v.memRow) >=
                    static_cast<std::uint32_t>(cfg_.pawsBinHot) &&
                memJobsThisStint_ < 2 * memStintBudget_;
            if (exhausted && !hot_extension)
                switchTo(Mode::Pim, v);
        }
    }

    void
    switchTo(Mode mode, const ArbView &v)
    {
        mode_ = mode;
        ++stats_.modeSwitches;
        pimCmdsThisStint_ = 0;
        memJobsThisStint_ = 0;
        if (mode == Mode::Mem)
            memStintBudget_ =
                std::max<std::size_t>(1, v.memPending);
        decayBins();
    }

    MemSchedConfig cfg_;
    Mode mode_ = Mode::Pim; // a queued kernel claims the channel first
    int pimCmdsThisStint_ = 0;
    std::size_t memJobsThisStint_ = 0;
    std::size_t memStintBudget_ = 1;
};

} // namespace

std::unique_ptr<MemSchedPolicy>
makeMemSchedPolicy(const MemSchedConfig &cfg)
{
    switch (cfg.kind) {
      case MemSchedKind::FrFcfs:
        return std::make_unique<FrFcfsPolicy>();
      case MemSchedKind::PimFrFcfs:
        return std::make_unique<PimFrFcfsPolicy>(cfg);
      case MemSchedKind::Paws:
        return std::make_unique<PawsPolicy>(cfg);
    }
    return std::make_unique<FrFcfsPolicy>();
}

} // namespace neupims::dram
