#include "dram/controller.h"

#include <algorithm>

namespace neupims::dram {

namespace {

/** Integer ceiling division. */
constexpr int
ceilDiv(int a, int b)
{
    return (a + b - 1) / b;
}

} // namespace

MemoryController::MemoryController(EventQueue &eq,
                                   const TimingParams &timing,
                                   const Organization &org,
                                   ControllerConfig cfg)
    : eq_(eq), cfg_(cfg), channel_(timing, org, cfg.dualRowBuffers),
      sched_(makeMemSchedPolicy(cfg.sched)),
      memBankBusyCycles_(static_cast<std::size_t>(channel_.numBanks()), 0)
{
    NEUPIMS_ASSERT(channel_.numBanks() <= 64,
                   "bank occupancy mask holds at most 64 banks");
    memInFlight_.reserve(cfg_.memIssueWindow);
    // Reserve the transaction queues up front: the DMA engine enqueues
    // a whole tensor stream's row jobs at once, and growth inside
    // enqueueMem was a measurable cost (the upstream NewtonSim
    // controller notes the same under-reservation).
    memQueue_.reserve(4096);
    pimQueue_.reserve(256);
}

void
MemoryController::enqueueMem(MemJob job)
{
    NEUPIMS_ASSERT(job.bank >= 0 && job.bank < channel_.numBanks());
    NEUPIMS_ASSERT(job.bursts >= 1 &&
                   job.bursts <= channel_.organization().burstsPerRow());
    memQueue_.push_back(std::move(job));
    kick();
}

void
MemoryController::enqueuePim(PimJob job)
{
    NEUPIMS_ASSERT(job.rowTiles >= 1);
    NEUPIMS_ASSERT(job.banksUsed >= 1 &&
                   job.banksUsed <= channel_.numBanks());
    pimQueue_.push_back(std::move(job));
    kick();
}

bool
MemoryController::idle() const
{
    return memQueue_.empty() && pimQueue_.empty() &&
           memInFlight_.empty() && !pim_;
}

std::size_t
MemoryController::pendingMemJobs() const
{
    return memQueue_.size() + memInFlight_.size();
}

std::size_t
MemoryController::pendingPimJobs() const
{
    return pimQueue_.size() + (pim_ ? 1 : 0);
}

void
MemoryController::kick()
{
    Cycle now = eq_.now();
    if (kickScheduled_ && nextKickAt_ <= now)
        return;
    kickScheduled_ = true;
    nextKickAt_ = now;
    eq_.scheduleSharded(now, this);
}

void
MemoryController::prepare()
{
    // Mirrors the former kick-event lambda: clear the pending-kick
    // marker, then run the arbitration loop. deferred_ routes every
    // external effect into the segment commit() replays.
    kickScheduled_ = false;
    nextKickAt_ = kCycleMax;
    pendingResume_ = kCycleMax;
    deferred_ = true;
    process();
    deferred_ = false;
    deferredSegs_.push_back({deferredCalls_.size(), pendingResume_});
}

void
MemoryController::commit()
{
    NEUPIMS_ASSERT(segCursor_ < deferredSegs_.size(),
                   "commit without a matching prepare");
    const DeferredSeg seg = deferredSegs_[segCursor_++];
    while (callCursor_ < seg.callsEnd) {
        DeferredCall &c = deferredCalls_[callCursor_++];
        c.fn(c.at);
    }
    // The resume is scheduled after the callbacks, exactly where the
    // serial control flow placed its eq_.schedule call.
    if (seg.resume != kCycleMax)
        eq_.scheduleSharded(seg.resume, this);
    if (segCursor_ == deferredSegs_.size()) {
        deferredSegs_.clear();
        deferredCalls_.clear();
        segCursor_ = 0;
        callCursor_ = 0;
    }
}

void
MemoryController::refillMemWindow()
{
    // Blocked-mode PIM (baseline single-row-buffer devices) stalls all
    // regular memory traffic while a PIM kernel is queued or running.
    if (cfg_.blockedMode && (pim_ || !pimQueue_.empty()))
        return;
    while (static_cast<int>(memInFlight_.size()) < cfg_.memIssueWindow &&
           !memQueue_.empty()) {
        // Keep at most one in-flight job per bank so an incoming job
        // cannot precharge a row a sibling is still bursting on.
        BankId bank = memQueue_.front().bank;
        if (banksBusyMask_ & (1ULL << bank))
            break;
        MemExec exec;
        exec.job = std::move(memQueue_.front());
        memQueue_.pop_front();
        exec.enqueued = eq_.now();
        exec.seq = memSeq_++;
        banksBusyMask_ |= 1ULL << bank;
        memInFlight_.push_back(std::move(exec));
    }
}

void
MemoryController::startNextPimKernel()
{
    if (pim_ || pimQueue_.empty())
        return;
    // Blocked mode drains in-flight memory accesses before switching
    // the channel into PIM operation.
    if (cfg_.blockedMode && !memInFlight_.empty())
        return;
    pim_ = std::make_unique<PimExec>();
    pim_->job = std::move(pimQueue_.front());
    pimQueue_.pop_front();
    pim_->phase = pim_->job.header ? PimExec::Phase::Header
                                   : PimExec::Phase::Gwrite;
    if (pim_->job.gwrites == 0 && pim_->phase == PimExec::Phase::Gwrite)
        pim_->phase = PimExec::Phase::Group;
    pim_->rounds = ceilDiv(pim_->job.rowTiles, pim_->job.banksUsed);
    pim_->banksThisRound = std::min(pim_->job.rowTiles,
                                    pim_->job.banksUsed);
    pim_->groupsPerRound = ceilDiv(pim_->banksThisRound, 4);
    pim_->groupRowReady.assign(pim_->groupsPerRound, 0);
}

Cycle
MemoryController::candidateMem(int &which) const
{
    which = -1;
    if (cfg_.blockedMode && pim_)
        return kCycleMax;
    Cycle best = kCycleMax;
    std::uint64_t bestSeq = 0;
    for (int i = 0; i < static_cast<int>(memInFlight_.size()); ++i) {
        const auto &m = memInFlight_[i];
        ConstBankRef bank = channel_.bank(m.job.bank);
        Cycle lb = std::max(m.enqueued, eq_.now());
        Cycle c;
        if (m.phase == MemExec::Phase::PreOrAct) {
            int open = bank.openRow(BufferSide::Mem);
            if (open == m.job.row) {
                c = channel_.earliestColumn(m.job.bank, BufferSide::Mem,
                                            m.job.write, lb);
            } else if (open != -1) {
                c = std::max(lb, bank.earliestPrecharge(BufferSide::Mem));
                c = channel_.earliestCa(c, 1);
            } else {
                c = channel_.earliestActivate(m.job.bank, BufferSide::Mem,
                                              lb);
            }
        } else {
            c = channel_.earliestColumn(m.job.bank, BufferSide::Mem,
                                        m.job.write, lb);
        }
        // Tie-break equal candidate cycles oldest-first: this matches
        // the former lowest-index rule (the in-flight vector used to
        // stay in admission order) while allowing swap-and-pop.
        if (c < best || (c == best && m.seq < bestSeq)) {
            best = c;
            bestSeq = m.seq;
            which = i;
        }
    }
    return best;
}

Cycle
MemoryController::candidatePim() const
{
    if (!pim_)
        return kCycleMax;
    const auto &p = *pim_;
    const auto &t = channel_.timing();
    Cycle lb = eq_.now();
    switch (p.phase) {
      case PimExec::Phase::Header:
        return channel_.earliestCa(lb, t.caPimCmd);
      case PimExec::Phase::Gwrite:
        return channel_.earliestCa(std::max(lb, p.gwriteReady),
                                   t.caPimCmd);
      case PimExec::Phase::Group: {
        // The operand vector must be staged before any dot-products.
        Cycle ready = std::max(lb, p.gwriteReady);
        bool needs_ca = !p.job.composite || p.group == 0;
        Cycle c = channel_.earliestPimActivateGroup(
            p.group * 4, std::min(4, p.banksThisRound - p.group * 4),
            ready, needs_ca);
        if (!p.job.header) {
            // Without PIM_HEADER the controller cannot bound the
            // kernel's latency, so it conservatively refuses to start
            // a round inside the guard window before a refresh (§5.2).
            Cycle due = channel_.nextRefreshDue();
            if (c + t.refreshGuard > due)
                c = std::max(c, due);
        }
        return c;
      }
      case PimExec::Phase::DotProduct:
        return channel_.earliestCa(
            std::max(lb, p.groupRowReady[p.dotProductsDone / 4]),
            t.caPimCmd);
      case PimExec::Phase::RoundResult:
        return channel_.earliestCa(std::max(lb, p.roundComputeEnd),
                                   t.caPimCmd);
      case PimExec::Phase::FinalResult:
        return std::max(lb, p.kernelComputeEnd);
      case PimExec::Phase::Precharge:
        return channel_.earliestCa(
            std::max({lb, p.kernelComputeEnd, p.resultEnd}), t.caPimCmd);
      case PimExec::Phase::Done:
        return kCycleMax;
    }
    return kCycleMax;
}

void
MemoryController::stepMem(int which)
{
    auto &m = memInFlight_[which];
    BankRef bank = channel_.bank(m.job.bank);
    Cycle lb = std::max(m.enqueued, eq_.now());

    if (m.phase == MemExec::Phase::PreOrAct) {
        int open = bank.openRow(BufferSide::Mem);
        if (!m.classified) {
            sched_->noteRowOutcome(m.job.bank, m.job.row,
                                   open == m.job.row ? RowOutcome::Hit
                                   : open != -1      ? RowOutcome::Conflict
                                                     : RowOutcome::Miss);
            m.classified = true;
        }
        if (open == m.job.row) {
            m.phase = MemExec::Phase::Bursts; // row hit, fall through
        } else if (open != -1) {
            channel_.issuePrecharge(m.job.bank, BufferSide::Mem, lb);
            return;
        } else {
            channel_.issueActivate(m.job.bank, BufferSide::Mem,
                                   m.job.row, lb);
            m.phase = MemExec::Phase::Bursts;
            return;
        }
    }

    auto [cmd, data_end] =
        m.job.write ? channel_.issueWrite(m.job.bank, BufferSide::Mem, lb)
                    : channel_.issueRead(m.job.bank, BufferSide::Mem, lb);
    (void)cmd;
    m.lastBurstEnd = data_end;
    memBankBusyCycles_[static_cast<std::size_t>(m.job.bank)] +=
        channel_.timing().tBL;
    if (++m.burstsDone == m.job.bursts) {
        banksBusyMask_ &= ~(1ULL << m.job.bank);
        finishMem(m);
        // Swap-and-pop: candidate selection orders by (cycle, seq),
        // not index, so in-flight order is free to shuffle.
        if (which != static_cast<int>(memInFlight_.size()) - 1)
            memInFlight_[which] = std::move(memInFlight_.back());
        memInFlight_.pop_back();
    }
}

void
MemoryController::finishMem(MemExec &exec)
{
    ++completedMemJobs_;
    sched_->noteMemJobCompleted();
    memQueueDelay_.sample(
        static_cast<double>(exec.lastBurstEnd - exec.enqueued));
    // Callback contract: invoked as soon as the completion cycle is
    // *known* (commands are committed ahead of simulated time up to
    // the horizon); the Cycle argument is the authoritative completion
    // time and callers schedule their continuations at it. Under
    // sharded dispatch the invocation is deferred to commit(), which
    // replays callbacks in the order they were produced here.
    if (exec.job.onComplete) {
        if (deferred_)
            deferredCalls_.push_back(
                {std::move(exec.job.onComplete), exec.lastBurstEnd});
        else
            exec.job.onComplete(exec.lastBurstEnd);
    }
}

void
MemoryController::stepPim()
{
    auto &p = *pim_;
    const auto &t = channel_.timing();
    Cycle lb = eq_.now();

    switch (p.phase) {
      case PimExec::Phase::Header: {
        channel_.issuePimCaCommand(CommandType::PimHeader, lb);
        p.phase = p.job.gwrites > 0 ? PimExec::Phase::Gwrite
                                    : PimExec::Phase::Group;
        return;
      }
      case PimExec::Phase::Gwrite: {
        Cycle when = channel_.issuePimCaCommand(
            CommandType::PimGwrite, std::max(lb, p.gwriteReady));
        p.gwriteReady = when + t.tGWRITE;
        if (++p.gwritesDone == p.job.gwrites)
            p.phase = PimExec::Phase::Group;
        return;
      }
      case PimExec::Phase::Group: {
        Cycle ready = std::max(lb, p.gwriteReady);
        if (!p.job.header) {
            Cycle due = channel_.nextRefreshDue();
            Cycle est = channel_.earliestPimActivateGroup(
                p.group * 4,
                std::min(4, p.banksThisRound - p.group * 4), ready,
                !p.job.composite || p.group == 0);
            if (est + t.refreshGuard > due)
                ready = std::max(ready, due);
        }
        if (p.job.composite && p.group == 0) {
            // One composite PIM_GEMV command drives the whole round:
            // activation waves and dot-products are sequenced
            // internally and occupy no further C/A slots (Fig. 9b).
            ready = channel_.issuePimCaCommand(CommandType::PimGemv,
                                               ready);
        }
        int first = p.group * 4;
        int nbanks = std::min(4, p.banksThisRound - first);
        Cycle act = channel_.issuePimActivateGroup(
            first, nbanks, /*row=*/p.round, ready,
            /*charge_ca=*/!p.job.composite);
        Cycle row_ready = act + t.tRCD;
        p.groupRowReady[p.group] = row_ready;
        if (p.job.composite) {
            // Composite mode: compute is triggered internally as soon
            // as the row is ready.
            Cycle end = row_ready + t.pimComputePerRow;
            pimBankBusyCycles_.add(
                static_cast<double>(nbanks) *
                static_cast<double>(t.pimComputePerRow));
            channel_.recordPimCompute(row_ready, end);
            p.roundComputeEnd = std::max(p.roundComputeEnd, end);
            p.kernelComputeEnd = std::max(p.kernelComputeEnd, end);
        }
        if (++p.group == p.groupsPerRound) {
            if (p.job.composite) {
                p.rowsIssued += p.banksThisRound;
                advanceRound();
            } else {
                p.phase = PimExec::Phase::DotProduct;
                p.dotProductsDone = 0;
            }
        }
        return;
      }
      case PimExec::Phase::DotProduct: {
        // Fine-grained baseline: every bank's dot-product needs its
        // own command on the C/A bus (Fig. 9a).
        Cycle row_ready = p.groupRowReady[p.dotProductsDone / 4];
        Cycle when = channel_.issuePimCaCommand(
            CommandType::PimDotProduct, std::max(lb, row_ready));
        Cycle start = std::max(when + 1, row_ready);
        Cycle end = start + t.pimComputePerRow;
        pimBankBusyCycles_.add(static_cast<double>(t.pimComputePerRow));
        channel_.recordPimCompute(start, end);
        p.roundComputeEnd = std::max(p.roundComputeEnd, end);
        p.kernelComputeEnd = std::max(p.kernelComputeEnd, end);
        if (++p.dotProductsDone == p.banksThisRound)
            p.phase = PimExec::Phase::RoundResult;
        return;
      }
      case PimExec::Phase::RoundResult: {
        Cycle when = channel_.issuePimCaCommand(
            CommandType::PimRdResult, std::max(lb, p.roundComputeEnd));
        int bursts = std::max(
            1, ceilDiv(p.banksThisRound * 4,
                       static_cast<int>(
                           channel_.organization().burstBytes)));
        auto [ds, de] = channel_.reserveDataBus(when + t.tCL, bursts);
        (void)ds;
        p.resultEnd = std::max(p.resultEnd, de);
        p.rowsIssued += p.banksThisRound;
        advanceRound();
        return;
      }
      case PimExec::Phase::FinalResult: {
        auto [ds, de] = channel_.reserveDataBus(
            std::max(lb, p.kernelComputeEnd),
            std::max(1, p.job.resultBursts));
        (void)ds;
        p.resultEnd = std::max(p.resultEnd, de);
        p.phase = PimExec::Phase::Precharge;
        return;
      }
      case PimExec::Phase::Precharge: {
        Cycle when = channel_.issuePimCaCommand(
            CommandType::PimPrecharge,
            std::max({lb, p.kernelComputeEnd, p.resultEnd}));
        auto &banks = channel_.banks();
        for (int b = 0; b < p.job.banksUsed; ++b) {
            Cycle w = std::max(
                when, banks.earliestPrecharge(b, BufferSide::Pim));
            banks.precharge(b, BufferSide::Pim, w);
        }
        p.phase = PimExec::Phase::Done;
        finishPim(std::max(p.resultEnd, p.kernelComputeEnd));
        return;
      }
      case PimExec::Phase::Done:
        return;
    }
}

void
MemoryController::advanceRound()
{
    auto &p = *pim_;
    if (++p.round < p.rounds) {
        p.banksThisRound = std::min(p.job.rowTiles - p.rowsIssued,
                                    p.job.banksUsed);
        p.groupsPerRound = ceilDiv(p.banksThisRound, 4);
        p.groupRowReady.assign(p.groupsPerRound, 0);
        p.group = 0;
        p.phase = PimExec::Phase::Group;
    } else {
        p.phase = p.job.composite ? PimExec::Phase::FinalResult
                                  : PimExec::Phase::Precharge;
    }
}

void
MemoryController::finishPim(Cycle done)
{
    ++completedPimJobs_;
    auto job = std::move(pim_->job);
    pim_.reset();
    // Same synchronous-callback contract as finishMem.
    if (job.onComplete) {
        if (deferred_)
            deferredCalls_.push_back({std::move(job.onComplete), done});
        else
            job.onComplete(done);
    }
}

bool
MemoryController::maybeRefresh(Cycle when)
{
    if (channel_.nextRefreshDue() > when)
        return false;
    // An announced (PIM_HEADER'd) kernel lets the controller postpone
    // the refresh — up to the JEDEC budget — instead of splitting the
    // kernel (§5.2).
    if (pim_ && pim_->job.header && pim_->phase != PimExec::Phase::Done) {
        if (channel_.postponeRefresh())
            return false;
    }
    channel_.issueRefresh(std::max(channel_.nextRefreshDue(), eq_.now()));
    return true;
}

void
MemoryController::process()
{
    while (true) {
        refillMemWindow();
        startNextPimKernel();

        int mem_idx = -1;
        Cycle cm = candidateMem(mem_idx);
        Cycle cp = candidatePim();
        if (cm == kCycleMax && cp == kCycleMax)
            return; // idle: nothing queued or in flight

        ArbView v;
        v.cm = cm;
        v.cp = cp;
        v.now = eq_.now();
        v.memPending = pendingMemJobs();
        v.pimPending = pendingPimJobs();
        if (mem_idx >= 0) {
            const auto &m = memInFlight_[mem_idx];
            v.memBank = m.job.bank;
            v.memRow = m.job.row;
            v.memIsRowHit =
                m.phase == MemExec::Phase::Bursts ||
                channel_.bank(m.job.bank).openRow(BufferSide::Mem) ==
                    m.job.row;
        }

        // The policy arbitrates only when both classes hold a legal
        // command; a lone class always issues (no policy can idle the
        // channel's only available work). Under FR-FCFS the chosen
        // candidate is min(cm, cp) — PIM takes priority on ties
        // (§5.3) — reproducing the historical schedule bit-for-bit.
        bool pick_pim;
        if (cp == kCycleMax)
            pick_pim = false;
        else if (cm == kCycleMax)
            pick_pim = true;
        else
            pick_pim = sched_->choosePim(v);

        Cycle cand = pick_pim ? cp : cm;
        if (maybeRefresh(cand))
            continue; // constraints changed; recompute candidates

        if (cand > eq_.now() + cfg_.horizon) {
            // Do not reserve bus slots far beyond simulated time: a
            // job arriving meanwhile deserves its priority. Resume
            // when the candidate enters the horizon.
            Cycle resume = cand - cfg_.horizon;
            if (!kickScheduled_ || nextKickAt_ > resume) {
                kickScheduled_ = true;
                nextKickAt_ = resume;
                if (deferred_)
                    pendingResume_ = resume;
                else
                    eq_.scheduleSharded(resume, this);
            }
            return;
        }

        sched_->recordIssue(v, pick_pim);
        if (pick_pim)
            stepPim();
        else
            stepMem(mem_idx);
    }
}

} // namespace neupims::dram
