/**
 * @file
 * Micron-style DRAM power model (paper §8.2, Table 5).
 *
 * Average power is composed of (a) background power — which grows
 * when banks carry a second row buffer whose state must be held
 * (paper: "the additional row buffer requires DRAM to consume more
 * background power") — and (b) per-command energies in the style of
 * the Micron DDR power model shipped with DRAMsim3: activate/
 * precharge pair energy, read/write burst energy, refresh energy, and
 * in-bank PIM compute, which the paper models as drawing 4x the power
 * of a read command for its duration.
 */

#ifndef NEUPIMS_DRAM_POWER_MODEL_H_
#define NEUPIMS_DRAM_POWER_MODEL_H_

#include "common/types.h"
#include "dram/command.h"
#include "dram/timing.h"

namespace neupims::dram {

struct PowerParams
{
    // Background power per channel, milliwatts.
    double backgroundMw = 95.0;
    /** Extra background per channel to hold the second row buffer. */
    double dualBufferBackgroundMw = 28.0;

    // Per-event energies, picojoules (Micron-model style, calibrated
    // so the Table-5 bench lands at the paper's 364 mW HBM baseline;
    // see EXPERIMENTS.md).
    double actPrePj = 800.0;    ///< one activate/precharge pair
    double readBurstPj = 620.0;   ///< one 64 B read burst
    double writeBurstPj = 680.0;  ///< one 64 B write burst
    double refreshPj = 25000.0;   ///< one all-bank refresh
    double gwritePj = 550.0;      ///< row -> global buffer copy

    /**
     * PIM compute draws pimComputeFactor x the instantaneous power of
     * a read command while the adder tree runs (paper assumption).
     * Read power is readBurstPj / tBL per cycle.
     */
    double pimComputeFactor = 4.0;

    /**
     * Fraction of a read command's power that is array-internal (the
     * rest drives I/O, which in-bank compute never pays): the 4x
     * factor applies only to this portion. 1/40 of burst power per
     * bank-cycle calibrates the dual-row-buffer PIM to the paper's
     * 635 mW (Table 5).
     */
    double pimArrayEnergyDivisor = 40.0;
};

/** Aggregated activity of one channel over a measurement window. */
struct ChannelActivity
{
    Cycle windowCycles = 0;
    CommandCounts counts;
    Cycle pimBankBusyCycles = 0; ///< sum over banks of compute cycles
    bool dualRowBuffers = false;
};

class PowerModel
{
  public:
    PowerModel(const PowerParams &params, const TimingParams &timing)
        : params_(params), timing_(timing)
    {}

    /** Dynamic energy of the window, picojoules. */
    double energyPj(const ChannelActivity &a) const;

    /** Average power over the window, milliwatts (incl. background). */
    double averagePowerMw(const ChannelActivity &a) const;

    /**
     * Energy per token-equivalent work unit: callers divide energy by
     * their own work metric; provided here for symmetry in benches.
     */
    double
    energyNj(const ChannelActivity &a) const
    {
        return energyPj(a) * 1e-3;
    }

    const PowerParams &params() const { return params_; }

  private:
    PowerParams params_;
    TimingParams timing_;
};

} // namespace neupims::dram

#endif // NEUPIMS_DRAM_POWER_MODEL_H_
