/**
 * @file
 * Functional (numeric) model of the Newton-style in-bank GEMV datapath.
 *
 * The timing simulator tracks only command schedules; this companion
 * model computes the actual arithmetic the PIM banks perform — matrix
 * rows interleaved round-robin across banks, the operand vector
 * broadcast from the per-channel global vector buffer, per-bank
 * multiplier arrays feeding an adder tree, fp32 accumulation across
 * row segments — so tests can assert the decomposition is exact
 * against a reference GEMV.
 */

#ifndef NEUPIMS_DRAM_PIM_FUNCTIONAL_H_
#define NEUPIMS_DRAM_PIM_FUNCTIONAL_H_

#include <cstddef>
#include <vector>

namespace neupims::dram {

class PimGemvFunctional
{
  public:
    /**
     * @param banks number of banks the matrix is interleaved across
     * @param elems_per_row matrix elements held per DRAM row segment
     * @param macs_per_cycle width of the per-bank multiplier array
     */
    PimGemvFunctional(int banks, int elems_per_row, int macs_per_cycle);

    /**
     * Compute y = M x where M is (rows x cols) row-major.
     * Emulates the bank interleaving and segment-wise accumulation.
     */
    std::vector<float> gemv(const std::vector<float> &matrix,
                            std::size_t rows, std::size_t cols,
                            const std::vector<float> &x) const;

    /** Straightforward reference GEMV for comparison in tests. */
    static std::vector<float> reference(const std::vector<float> &matrix,
                                        std::size_t rows,
                                        std::size_t cols,
                                        const std::vector<float> &x);

    /** Number of bank-row tiles a (rows x cols) GEMV occupies. */
    std::size_t rowTiles(std::size_t rows, std::size_t cols) const;

    int banks() const { return banks_; }
    int elemsPerRow() const { return elemsPerRow_; }

  private:
    int banks_;
    int elemsPerRow_;
    int macsPerCycle_;
};

} // namespace neupims::dram

#endif // NEUPIMS_DRAM_PIM_FUNCTIONAL_H_
