/**
 * @file
 * Per-channel memory controller (paper §5.3).
 *
 * The controller owns two queues — regular memory row-stream jobs
 * (NPU weight/activation/KV traffic) and PIM GEMV kernels — and
 * interleaves their commands on the channel's shared C/A bus.
 *
 * Modes reproduce the paper's design space:
 *  - blocked (baseline PIM, single row buffer): while a PIM kernel
 *    executes, no memory command may issue; the shared row buffer
 *    means PIM activations evict open MEM rows.
 *  - concurrent (NeuPIMs, dual row buffers): commands of both classes
 *    are merged in issue-time order with PIM commands prioritized on
 *    ties (§5.3: PIM priority keeps the slower PIM control path from
 *    starving while MEM commands fill the abundant C/A gaps, Fig. 9).
 *  - composite PIM_GEMV vs fine-grained PIM_DOTPRODUCT streams, and
 *    PIM_HEADER-based refresh scheduling vs a conservative refresh
 *    guard (§5.2).
 *
 * Dispatch is event-driven with a bounded reservation horizon: the
 * controller never commits bus slots more than `horizon` cycles ahead
 * of simulated time, so a PIM kernel arriving mid-phase observes at
 * most `horizon` cycles of priority staleness.
 *
 * Committed-schedule lifetime: a schedule (and its horizon-ahead
 * commitments) lives exactly as long as the controller object. The
 * executor rebuilds every controller per runIteration() call, and the
 * serving layer's channel-failure path (PagedKvCache::failChannel)
 * operates on capacity only — no MemoryController exists across a
 * failure, so an in-flight committed schedule can never be replayed
 * onto a failed channel. tests/runtime/test_controller_lifecycle.cc
 * locks this invariant.
 *
 * Arbitration between the two classes is pluggable (MemSchedPolicy,
 * dram/mem_sched.h): FR-FCFS reproduces the historical choice rule
 * bit-for-bit; PIM-FRFCFS and PAWS bias toward PIM with explicit
 * starvation caps and mode switching.
 */

#ifndef NEUPIMS_DRAM_CONTROLLER_H_
#define NEUPIMS_DRAM_CONTROLLER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/event_queue.h"
#include "common/ring_queue.h"
#include "common/stats.h"
#include "common/types.h"
#include "dram/channel.h"
#include "dram/mem_sched.h"

namespace neupims::dram {

/** A regular memory access: one row's worth of reads or writes. */
struct MemJob
{
    BankId bank = 0;
    int row = 0;
    int bursts = 1;           ///< 64 B bursts within the row (1..16)
    bool write = false;
    /**
     * Invoked once the completion cycle of the last data burst is
     * known. NOTE: the controller commits command schedules up to a
     * bounded horizon ahead of simulated time, so the callback may run
     * *before* the reported cycle is reached; the Cycle argument is
     * authoritative and continuations must be scheduled at it.
     */
    std::function<void(Cycle)> onComplete;
};

/** One PIM GEMV kernel (a batch of dot-products on this channel). */
struct PimJob
{
    int rowTiles = 1;         ///< total matrix-operand bank-rows
    int banksUsed = 32;       ///< banks participating per round
    int gwrites = 1;          ///< operand-vector chunks to stage
    int resultBursts = 1;     ///< 64 B result bursts returned to host
    bool composite = true;    ///< PIM_GEMV vs PIM_DOTPRODUCT stream
    bool header = true;       ///< PIM_HEADER announced (refresh-safe)
    /**
     * Invoked once the kernel's completion cycle (results returned to
     * the host) is known; same synchronous contract as MemJob.
     */
    std::function<void(Cycle)> onComplete;
};

struct ControllerConfig
{
    bool dualRowBuffers = true;  ///< NeuPIMs banks vs baseline banks
    /**
     * Blocked mode: serialize MEM and PIM phases (baseline PIM).
     * Defaults to the complement of dualRowBuffers via make().
     */
    bool blockedMode = false;
    Cycle horizon = 256;         ///< reservation lookahead bound
    /**
     * In-flight row jobs the controller issues out of (bank overlap).
     * A bank's row cycle is ~4x the data-bus occupancy of one full
     * row, so 8 in-flight banks keep the data bus saturated on
     * streaming reads.
     */
    int memIssueWindow = 8;

    /** Arbitration policy between MEM and PIM command classes. */
    MemSchedConfig sched;

    static ControllerConfig
    make(bool dual_row_buffers)
    {
        ControllerConfig c;
        c.dualRowBuffers = dual_row_buffers;
        c.blockedMode = !dual_row_buffers;
        return c;
    }
};

/**
 * The controller is a ShardedEvent: its kick/resume events carry a
 * shard tag so the event queue can batch same-cycle events of
 * *different* controllers onto the worker pool. prepare() runs the
 * arbitration loop touching only this channel's state (plus the
 * stable queue clock); every externally visible effect — job
 * completion callbacks and the horizon-resume schedule() — is
 * buffered and replayed by commit() in original sequence order, which
 * is what makes threaded stepping bit-identical to serial
 * (DESIGN.md §12).
 */
class MemoryController : public ShardedEvent
{
  public:
    MemoryController(EventQueue &eq, const TimingParams &timing,
                     const Organization &org, ControllerConfig cfg);

    void enqueueMem(MemJob job);
    void enqueuePim(PimJob job);

    // --- ShardedEvent ---------------------------------------------------
    /** Run the arbitration loop, deferring external effects. */
    void prepare() override;
    /** Replay deferred completion callbacks and the resume schedule. */
    void commit() override;

    Channel &channel() { return channel_; }
    const Channel &channel() const { return channel_; }
    const ControllerConfig &config() const { return cfg_; }

    /** True when no job is queued or in flight. */
    bool idle() const;

    /** Queued + in-flight counts (for tests and back-pressure). */
    std::size_t pendingMemJobs() const;
    std::size_t pendingPimJobs() const;

    // --- statistics -----------------------------------------------------
    Scalar &pimBankBusyCycles() { return pimBankBusyCycles_; }
    const Scalar &pimBankBusyCycles() const { return pimBankBusyCycles_; }
    Distribution &memQueueDelay() { return memQueueDelay_; }
    std::uint64_t completedMemJobs() const { return completedMemJobs_; }
    std::uint64_t completedPimJobs() const { return completedPimJobs_; }

    /** The active arbitration policy and its scheduling statistics. */
    const MemSchedPolicy &memSched() const { return *sched_; }
    const MemSchedStats &memSchedStats() const { return sched_->stats(); }

    /** Per-bank MEM-side data-bus busy cycles (64 B beats served). */
    const std::vector<Cycle> &
    memBankBusyCycles() const
    {
        return memBankBusyCycles_;
    }

  private:
    /** In-flight state machine for one MemJob. */
    struct MemExec
    {
        MemJob job;
        enum class Phase { PreOrAct, Bursts, Done } phase = Phase::PreOrAct;
        int burstsDone = 0;
        Cycle lastBurstEnd = 0;
        Cycle enqueued = 0;
        /** Issue-window admission order: candidate selection breaks
         * cycle ties oldest-first, so completion may swap-and-pop the
         * vector without perturbing the schedule. */
        std::uint64_t seq = 0;
        /** Row-buffer outcome recorded (first stepMem only). */
        bool classified = false;
    };

    /** In-flight state machine for one PimJob. */
    struct PimExec
    {
        PimJob job;
        enum class Phase
        {
            Gwrite,
            Header,
            Group,       ///< activation wave of the current round
            DotProduct,  ///< fine-grained per-bank compute commands
            RoundResult, ///< fine-grained per-round result readback
            FinalResult, ///< composite kernel-end result readback
            Precharge,
            Done,
        } phase = Phase::Gwrite;

        int gwritesDone = 0;
        Cycle gwriteReady = 0;      ///< global vector buffer free time
        int rounds = 0;
        int round = 0;
        int groupsPerRound = 0;
        int group = 0;
        int dotProductsDone = 0;
        int banksThisRound = 0;
        std::vector<Cycle> groupRowReady; ///< per-group tRCD-complete time
        Cycle roundComputeEnd = 0;
        Cycle kernelComputeEnd = 0;
        Cycle resultEnd = 0;
        int rowsIssued = 0;
    };

    void kick();
    void process();

    /** Earliest cycle the front-most mem work could issue; kCycleMax
     * if none. Also selects which in-flight job that is. */
    Cycle candidateMem(int &which) const;
    /** Earliest cycle the active PIM kernel's next command could
     * issue; kCycleMax if none. */
    Cycle candidatePim() const;

    /** Issue the next sub-command of in-flight mem job @p which. */
    void stepMem(int which);
    /** Issue the next sub-command of the active PIM kernel. */
    void stepPim();
    /** Advance the active PIM kernel to its next round or epilogue. */
    void advanceRound();

    /** Refill the in-flight mem window from the queue. */
    void refillMemWindow();

    /** Begin executing the next queued PIM kernel, if any. */
    void startNextPimKernel();

    /** Handle refresh that is (or would become) due before @p when. */
    bool maybeRefresh(Cycle when);

    void finishMem(MemExec &exec);
    void finishPim(Cycle done);

    EventQueue &eq_;
    ControllerConfig cfg_;
    Channel channel_;

    RingQueue<MemJob> memQueue_;
    RingQueue<PimJob> pimQueue_;
    std::vector<MemExec> memInFlight_;
    /** Banks with an in-flight mem job (one bit per bank), replacing
     * the former linear scan of memInFlight_ per admission. */
    std::uint64_t banksBusyMask_ = 0;
    std::uint64_t memSeq_ = 0;
    std::unique_ptr<PimExec> pim_;

    bool kickScheduled_ = false;
    Cycle nextKickAt_ = kCycleMax;

    /**
     * Deferred external effects of one prepare() pass. A controller
     * can be dispatched twice in one batch (stale kick + resume at
     * the same cycle), so segments carry watermarks: each commit()
     * replays exactly its own prepare()'s callbacks and resume.
     */
    struct DeferredCall
    {
        std::function<void(Cycle)> fn;
        Cycle at;
    };
    struct DeferredSeg
    {
        std::size_t callsEnd;  ///< watermark into deferredCalls_
        Cycle resume;          ///< kCycleMax: no resume to schedule
    };
    bool deferred_ = false;        ///< inside prepare(): buffer effects
    Cycle pendingResume_ = kCycleMax;
    std::vector<DeferredCall> deferredCalls_;
    std::vector<DeferredSeg> deferredSegs_;
    std::size_t callCursor_ = 0;
    std::size_t segCursor_ = 0;

    std::unique_ptr<MemSchedPolicy> sched_;
    std::vector<Cycle> memBankBusyCycles_;

    Scalar pimBankBusyCycles_;
    Distribution memQueueDelay_;
    std::uint64_t completedMemJobs_ = 0;
    std::uint64_t completedPimJobs_ = 0;
};

} // namespace neupims::dram

#endif // NEUPIMS_DRAM_CONTROLLER_H_
