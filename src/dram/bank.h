/**
 * @file
 * Per-bank DRAM state with dual row buffers (paper §5.1, Figure 8).
 *
 * A NeuPIMs bank carries two independent row buffers: the MEM row
 * buffer serving regular read/write accesses and the PIM row buffer
 * feeding the in-bank GEMV datapath. In baseline (single row buffer)
 * mode the two aliases share one buffer, so a PIM activation evicts the
 * open MEM row and vice versa — which is precisely the
 * microarchitectural conflict that forces existing PIMs into "blocked"
 * operation.
 *
 * Timing is tracked as next-allowed timestamps per command class (the
 * same constraint algebra DRAMsim3 enforces); banks never tick.
 *
 * State lives in BankArray as structure-of-arrays: one dense vector
 * per timestamp class across all of a channel's banks, so the
 * controller's whole-channel scans (refresh readiness, grouped PIM
 * activation windows, candidate selection) walk contiguous memory
 * instead of striding across per-bank objects. BankRef is a
 * two-word handle giving call sites the old per-bank method API;
 * Bank keeps the standalone single-bank unit (a one-element array)
 * for unit tests and documentation.
 */

#ifndef NEUPIMS_DRAM_BANK_H_
#define NEUPIMS_DRAM_BANK_H_

#include <algorithm>
#include <vector>

#include "common/types.h"
#include "dram/timing.h"

namespace neupims::dram {

/** Which of the two row buffers a command targets. */
enum class BufferSide { Mem, Pim };

/** SoA timing/row state for all banks of one channel. */
class BankArray
{
  public:
    BankArray(const TimingParams &t, bool dual_row_buffers, int nbanks)
        : timing_(&t), dualRowBuffers_(dual_row_buffers),
          memOpenRow_(static_cast<std::size_t>(nbanks), -1),
          pimOpenRow_(static_cast<std::size_t>(nbanks), -1),
          nextActAny_(static_cast<std::size_t>(nbanks), 0),
          memNextAct_(static_cast<std::size_t>(nbanks), 0),
          pimNextAct_(static_cast<std::size_t>(nbanks), 0),
          memNextColumn_(static_cast<std::size_t>(nbanks), 0),
          pimNextColumn_(static_cast<std::size_t>(nbanks), 0),
          memNextPre_(static_cast<std::size_t>(nbanks), 0),
          pimNextPre_(static_cast<std::size_t>(nbanks), 0)
    {}

    bool dualRowBuffers() const { return dualRowBuffers_; }
    int size() const { return static_cast<int>(memOpenRow_.size()); }

    /** Currently open row on a side, or -1 if the buffer is closed. */
    int
    openRow(BankId b, BufferSide side) const
    {
        return side == BufferSide::Mem ? memOpenRow_[idx(b)]
                                       : pimOpenRow_[idx(b)];
    }

    /** Earliest cycle an ACTIVATE for @p side may issue (bank-local). */
    Cycle
    earliestActivate(BankId b, BufferSide side) const
    {
        // Row activations on either buffer contend for the shared cell
        // array access circuitry: tRC is enforced across both sides.
        // Precharge-readiness is tracked per side.
        return std::max(nextActAny_[idx(b)],
                        side == BufferSide::Mem ? memNextAct_[idx(b)]
                                                : pimNextAct_[idx(b)]);
    }

    /** Earliest cycle a column command (RD/WR/dot-product) may issue. */
    Cycle
    earliestColumn(BankId b, BufferSide side) const
    {
        return side == BufferSide::Mem ? memNextColumn_[idx(b)]
                                       : pimNextColumn_[idx(b)];
    }

    /** Earliest cycle a PRECHARGE for @p side may issue. */
    Cycle
    earliestPrecharge(BankId b, BufferSide side) const
    {
        return side == BufferSide::Mem ? memNextPre_[idx(b)]
                                       : pimNextPre_[idx(b)];
    }

    /**
     * Apply an ACTIVATE issued at @p when opening @p row on @p side.
     * @pre when >= earliestActivate(b, side)
     */
    void
    activate(BankId b, BufferSide side, int row, Cycle when)
    {
        const auto &t = *timing_;
        std::size_t i = idx(b);
        if (!dualRowBuffers_) {
            // Aliased buffer: both sides observe the same open row and
            // the same column/precharge readiness.
            memOpenRow_[i] = pimOpenRow_[i] = row;
            memNextColumn_[i] = pimNextColumn_[i] = when + t.tRCD;
            memNextPre_[i] = pimNextPre_[i] = when + t.tRAS;
        } else if (side == BufferSide::Mem) {
            memOpenRow_[i] = row;
            memNextColumn_[i] = when + t.tRCD;
            memNextPre_[i] = when + t.tRAS;
        } else {
            pimOpenRow_[i] = row;
            pimNextColumn_[i] = when + t.tRCD;
            pimNextPre_[i] = when + t.tRAS;
        }
        nextActAny_[i] = when + t.tRC();
        sideNextAct(i, side) = when + t.tRC();
    }

    /** Apply a read issued at @p when. */
    void
    read(BankId b, BufferSide side, Cycle when)
    {
        const auto &t = *timing_;
        std::size_t i = idx(b);
        Cycle pre_ready = when + t.tRTP;
        if (side == BufferSide::Mem || !dualRowBuffers_)
            memNextPre_[i] = std::max(memNextPre_[i], pre_ready);
        if (side == BufferSide::Pim || !dualRowBuffers_)
            pimNextPre_[i] = std::max(pimNextPre_[i], pre_ready);
    }

    /** Apply a write issued at @p when. */
    void
    write(BankId b, BufferSide side, Cycle when)
    {
        const auto &t = *timing_;
        std::size_t i = idx(b);
        Cycle pre_ready = when + t.tCWL + t.tBL + t.tWR;
        if (side == BufferSide::Mem || !dualRowBuffers_)
            memNextPre_[i] = std::max(memNextPre_[i], pre_ready);
        if (side == BufferSide::Pim || !dualRowBuffers_)
            pimNextPre_[i] = std::max(pimNextPre_[i], pre_ready);
    }

    /** Apply a PRECHARGE issued at @p when closing @p side's buffer. */
    void
    precharge(BankId b, BufferSide side, Cycle when)
    {
        const auto &t = *timing_;
        std::size_t i = idx(b);
        if (side == BufferSide::Mem || !dualRowBuffers_) {
            memOpenRow_[i] = -1;
            memNextAct_[i] = std::max(memNextAct_[i], when + t.tRP);
        }
        if (side == BufferSide::Pim || !dualRowBuffers_) {
            pimOpenRow_[i] = -1;
            pimNextAct_[i] = std::max(pimNextAct_[i], when + t.tRP);
        }
    }

    /** Apply an all-bank REFRESH issued at @p when. */
    void
    refreshAll(Cycle when)
    {
        const auto &t = *timing_;
        Cycle done = when + t.tRFC;
        std::size_t n = memOpenRow_.size();
        // Dense column-wise maxes: this is the SoA payoff — the JEDEC
        // refresh and the all-bank readiness scan in issueRefresh walk
        // nine flat arrays instead of striding across bank objects.
        for (std::size_t i = 0; i < n; ++i)
            memOpenRow_[i] = -1;
        for (std::size_t i = 0; i < n; ++i)
            pimOpenRow_[i] = -1;
        for (std::size_t i = 0; i < n; ++i)
            nextActAny_[i] = std::max(nextActAny_[i], done);
        for (std::size_t i = 0; i < n; ++i)
            memNextAct_[i] = std::max(memNextAct_[i], done);
        for (std::size_t i = 0; i < n; ++i)
            pimNextAct_[i] = std::max(pimNextAct_[i], done);
        for (std::size_t i = 0; i < n; ++i)
            memNextColumn_[i] = std::max(memNextColumn_[i], done);
        for (std::size_t i = 0; i < n; ++i)
            pimNextColumn_[i] = std::max(pimNextColumn_[i], done);
    }

    /** Latest earliestPrecharge over both sides of all banks. */
    Cycle
    maxEarliestPrecharge() const
    {
        Cycle when = 0;
        for (Cycle c : memNextPre_)
            when = std::max(when, c);
        for (Cycle c : pimNextPre_)
            when = std::max(when, c);
        return when;
    }

  private:
    static std::size_t idx(BankId b) { return static_cast<std::size_t>(b); }

    Cycle &
    sideNextAct(std::size_t i, BufferSide side)
    {
        return side == BufferSide::Mem ? memNextAct_[i] : pimNextAct_[i];
    }

    const TimingParams *timing_;
    bool dualRowBuffers_;

    std::vector<int> memOpenRow_;
    std::vector<int> pimOpenRow_;

    std::vector<Cycle> nextActAny_; ///< tRC across both buffers
    std::vector<Cycle> memNextAct_;
    std::vector<Cycle> pimNextAct_;
    std::vector<Cycle> memNextColumn_;
    std::vector<Cycle> pimNextColumn_;
    std::vector<Cycle> memNextPre_;
    std::vector<Cycle> pimNextPre_;
};

/**
 * Two-word handle onto one bank of a BankArray, preserving the old
 * per-bank method API at the controller/channel call sites. Copies
 * are cheap; a non-const ref mutates the underlying array.
 */
class BankRef
{
  public:
    BankRef(BankArray &a, BankId b) : a_(&a), b_(b) {}

    bool dualRowBuffers() const { return a_->dualRowBuffers(); }
    int openRow(BufferSide side) const { return a_->openRow(b_, side); }
    Cycle
    earliestActivate(BufferSide side) const
    {
        return a_->earliestActivate(b_, side);
    }
    Cycle
    earliestColumn(BufferSide side) const
    {
        return a_->earliestColumn(b_, side);
    }
    Cycle
    earliestPrecharge(BufferSide side) const
    {
        return a_->earliestPrecharge(b_, side);
    }
    void
    activate(BufferSide side, int row, Cycle when)
    {
        a_->activate(b_, side, row, when);
    }
    void read(BufferSide side, Cycle when) { a_->read(b_, side, when); }
    void write(BufferSide side, Cycle when) { a_->write(b_, side, when); }
    void
    precharge(BufferSide side, Cycle when)
    {
        a_->precharge(b_, side, when);
    }
    void refresh(Cycle when) { a_->refreshAll(when); }

  private:
    BankArray *a_;
    BankId b_;
};

/** Read-only counterpart of BankRef for const channel access. */
class ConstBankRef
{
  public:
    ConstBankRef(const BankArray &a, BankId b) : a_(&a), b_(b) {}

    bool dualRowBuffers() const { return a_->dualRowBuffers(); }
    int openRow(BufferSide side) const { return a_->openRow(b_, side); }
    Cycle
    earliestActivate(BufferSide side) const
    {
        return a_->earliestActivate(b_, side);
    }
    Cycle
    earliestColumn(BufferSide side) const
    {
        return a_->earliestColumn(b_, side);
    }
    Cycle
    earliestPrecharge(BufferSide side) const
    {
        return a_->earliestPrecharge(b_, side);
    }

  private:
    const BankArray *a_;
    BankId b_;
};

/**
 * Standalone single bank: a one-element BankArray. The unit of the
 * bank-level tests and the reference for the per-bank constraint
 * algebra documented above.
 */
class Bank
{
  public:
    explicit Bank(const TimingParams &t, bool dual_row_buffers)
        : a_(t, dual_row_buffers, 1)
    {}

    bool dualRowBuffers() const { return a_.dualRowBuffers(); }
    int openRow(BufferSide side) const { return a_.openRow(0, side); }
    Cycle
    earliestActivate(BufferSide side) const
    {
        return a_.earliestActivate(0, side);
    }
    Cycle
    earliestColumn(BufferSide side) const
    {
        return a_.earliestColumn(0, side);
    }
    Cycle
    earliestPrecharge(BufferSide side) const
    {
        return a_.earliestPrecharge(0, side);
    }
    void
    activate(BufferSide side, int row, Cycle when)
    {
        a_.activate(0, side, row, when);
    }
    void read(BufferSide side, Cycle when) { a_.read(0, side, when); }
    void write(BufferSide side, Cycle when) { a_.write(0, side, when); }
    void
    precharge(BufferSide side, Cycle when)
    {
        a_.precharge(0, side, when);
    }
    void refresh(Cycle when) { a_.refreshAll(when); }

  private:
    BankArray a_;
};

} // namespace neupims::dram

#endif // NEUPIMS_DRAM_BANK_H_
