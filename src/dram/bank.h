/**
 * @file
 * Per-bank DRAM state with dual row buffers (paper §5.1, Figure 8).
 *
 * A NeuPIMs bank carries two independent row buffers: the MEM row
 * buffer serving regular read/write accesses and the PIM row buffer
 * feeding the in-bank GEMV datapath. In baseline (single row buffer)
 * mode the two aliases share one buffer, so a PIM activation evicts the
 * open MEM row and vice versa — which is precisely the
 * microarchitectural conflict that forces existing PIMs into "blocked"
 * operation.
 *
 * Timing is tracked as next-allowed timestamps per command class (the
 * same constraint algebra DRAMsim3 enforces); the bank never ticks.
 */

#ifndef NEUPIMS_DRAM_BANK_H_
#define NEUPIMS_DRAM_BANK_H_

#include <algorithm>

#include "common/types.h"
#include "dram/timing.h"

namespace neupims::dram {

/** Which of the two row buffers a command targets. */
enum class BufferSide { Mem, Pim };

class Bank
{
  public:
    explicit Bank(const TimingParams &t, bool dual_row_buffers)
        : timing_(&t), dualRowBuffers_(dual_row_buffers)
    {}

    bool dualRowBuffers() const { return dualRowBuffers_; }

    /** Currently open row on a side, or -1 if the buffer is closed. */
    int
    openRow(BufferSide side) const
    {
        return side == BufferSide::Mem ? memOpenRow_ : pimOpenRow_;
    }

    /** Earliest cycle an ACTIVATE for @p side may issue (bank-local). */
    Cycle
    earliestActivate(BufferSide side) const
    {
        // Row activations on either buffer contend for the shared cell
        // array access circuitry: tRC is enforced across both sides.
        // Precharge-readiness is tracked per side.
        Cycle ready = std::max(nextActAny_, sideNextAct(side));
        return ready;
    }

    /** Earliest cycle a column command (RD/WR/dot-product) may issue. */
    Cycle
    earliestColumn(BufferSide side) const
    {
        return side == BufferSide::Mem ? memNextColumn_ : pimNextColumn_;
    }

    /** Earliest cycle a PRECHARGE for @p side may issue. */
    Cycle
    earliestPrecharge(BufferSide side) const
    {
        return side == BufferSide::Mem ? memNextPre_ : pimNextPre_;
    }

    /**
     * Apply an ACTIVATE issued at @p when opening @p row on @p side.
     * @pre when >= earliestActivate(side)
     */
    void
    activate(BufferSide side, int row, Cycle when)
    {
        const auto &t = *timing_;
        if (!dualRowBuffers_) {
            // Single buffer: activating for one side closes the other.
            memOpenRow_ = -1;
            pimOpenRow_ = -1;
        }
        if (side == BufferSide::Mem) {
            memOpenRow_ = row;
            memNextColumn_ = when + t.tRCD;
            memNextPre_ = when + t.tRAS;
        } else {
            pimOpenRow_ = row;
            pimNextColumn_ = when + t.tRCD;
            pimNextPre_ = when + t.tRAS;
        }
        if (!dualRowBuffers_) {
            // Aliased buffer: both sides observe the same open row and
            // the same column/precharge readiness.
            memOpenRow_ = pimOpenRow_ = row;
            memNextColumn_ = pimNextColumn_ = when + t.tRCD;
            memNextPre_ = pimNextPre_ = when + t.tRAS;
        }
        nextActAny_ = when + t.tRC();
        sideNextAct(side) = when + t.tRC();
    }

    /** Apply a read issued at @p when. */
    void
    read(BufferSide side, Cycle when)
    {
        const auto &t = *timing_;
        Cycle pre_ready = when + t.tRTP;
        if (side == BufferSide::Mem || !dualRowBuffers_)
            memNextPre_ = std::max(memNextPre_, pre_ready);
        if (side == BufferSide::Pim || !dualRowBuffers_)
            pimNextPre_ = std::max(pimNextPre_, pre_ready);
    }

    /** Apply a write issued at @p when. */
    void
    write(BufferSide side, Cycle when)
    {
        const auto &t = *timing_;
        Cycle pre_ready = when + t.tCWL + t.tBL + t.tWR;
        if (side == BufferSide::Mem || !dualRowBuffers_)
            memNextPre_ = std::max(memNextPre_, pre_ready);
        if (side == BufferSide::Pim || !dualRowBuffers_)
            pimNextPre_ = std::max(pimNextPre_, pre_ready);
    }

    /** Apply a PRECHARGE issued at @p when closing @p side's buffer. */
    void
    precharge(BufferSide side, Cycle when)
    {
        const auto &t = *timing_;
        if (side == BufferSide::Mem || !dualRowBuffers_) {
            memOpenRow_ = -1;
            sideNextAct(BufferSide::Mem) =
                std::max(sideNextAct(BufferSide::Mem), when + t.tRP);
        }
        if (side == BufferSide::Pim || !dualRowBuffers_) {
            pimOpenRow_ = -1;
            sideNextAct(BufferSide::Pim) =
                std::max(sideNextAct(BufferSide::Pim), when + t.tRP);
        }
    }

    /** Apply an all-bank REFRESH issued at @p when. */
    void
    refresh(Cycle when)
    {
        const auto &t = *timing_;
        memOpenRow_ = -1;
        pimOpenRow_ = -1;
        Cycle done = when + t.tRFC;
        nextActAny_ = std::max(nextActAny_, done);
        memNextAct_ = std::max(memNextAct_, done);
        pimNextAct_ = std::max(pimNextAct_, done);
        memNextColumn_ = std::max(memNextColumn_, done);
        pimNextColumn_ = std::max(pimNextColumn_, done);
    }

  private:
    Cycle &
    sideNextAct(BufferSide side)
    {
        return side == BufferSide::Mem ? memNextAct_ : pimNextAct_;
    }

    Cycle
    sideNextAct(BufferSide side) const
    {
        return side == BufferSide::Mem ? memNextAct_ : pimNextAct_;
    }

    const TimingParams *timing_;
    bool dualRowBuffers_;

    int memOpenRow_ = -1;
    int pimOpenRow_ = -1;

    Cycle nextActAny_ = 0;   ///< tRC across both buffers (shared array)
    Cycle memNextAct_ = 0;
    Cycle pimNextAct_ = 0;
    Cycle memNextColumn_ = 0;
    Cycle pimNextColumn_ = 0;
    Cycle memNextPre_ = 0;
    Cycle pimNextPre_ = 0;
};

} // namespace neupims::dram

#endif // NEUPIMS_DRAM_BANK_H_
