#include "dram/pim_functional.h"

#include "common/log.h"

namespace neupims::dram {

PimGemvFunctional::PimGemvFunctional(int banks, int elems_per_row,
                                     int macs_per_cycle)
    : banks_(banks), elemsPerRow_(elems_per_row),
      macsPerCycle_(macs_per_cycle)
{
    NEUPIMS_ASSERT(banks_ > 0 && elemsPerRow_ > 0 && macsPerCycle_ > 0);
}

std::vector<float>
PimGemvFunctional::gemv(const std::vector<float> &matrix,
                        std::size_t rows, std::size_t cols,
                        const std::vector<float> &x) const
{
    NEUPIMS_ASSERT(matrix.size() == rows * cols);
    NEUPIMS_ASSERT(x.size() == cols);
    std::vector<float> y(rows, 0.0f);

    // Matrix rows are interleaved round-robin across banks (§6.3);
    // each bank walks its rows segment by segment (one DRAM row holds
    // elemsPerRow_ matrix elements), and the adder tree reduces
    // macsPerCycle_ products per step into an fp32 accumulator.
    for (std::size_t r = 0; r < rows; ++r) {
        // Bank assignment affects scheduling, not the math; the
        // per-bank accumulator is private per output element.
        float acc = 0.0f;
        for (std::size_t seg = 0; seg < cols;
             seg += static_cast<std::size_t>(elemsPerRow_)) {
            std::size_t seg_end =
                std::min(cols, seg + static_cast<std::size_t>(
                                         elemsPerRow_));
            float seg_acc = 0.0f;
            for (std::size_t c = seg; c < seg_end;
                 c += static_cast<std::size_t>(macsPerCycle_)) {
                std::size_t chunk_end =
                    std::min(seg_end,
                             c + static_cast<std::size_t>(macsPerCycle_));
                // Adder tree: sum the chunk pairwise (order differs
                // from the naive loop; fp32 keeps it exact enough for
                // test tolerances).
                float chunk = 0.0f;
                for (std::size_t i = c; i < chunk_end; ++i)
                    chunk += matrix[r * cols + i] * x[i];
                seg_acc += chunk;
            }
            acc += seg_acc;
        }
        y[r] = acc;
    }
    return y;
}

std::vector<float>
PimGemvFunctional::reference(const std::vector<float> &matrix,
                             std::size_t rows, std::size_t cols,
                             const std::vector<float> &x)
{
    NEUPIMS_ASSERT(matrix.size() == rows * cols);
    NEUPIMS_ASSERT(x.size() == cols);
    std::vector<float> y(rows, 0.0f);
    for (std::size_t r = 0; r < rows; ++r) {
        double acc = 0.0;
        for (std::size_t c = 0; c < cols; ++c)
            acc += static_cast<double>(matrix[r * cols + c]) *
                   static_cast<double>(x[c]);
        y[r] = static_cast<float>(acc);
    }
    return y;
}

std::size_t
PimGemvFunctional::rowTiles(std::size_t rows, std::size_t cols) const
{
    std::size_t segs_per_row =
        (cols + static_cast<std::size_t>(elemsPerRow_) - 1) /
        static_cast<std::size_t>(elemsPerRow_);
    return rows * segs_per_row;
}

} // namespace neupims::dram
