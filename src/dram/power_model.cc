#include "dram/power_model.h"

namespace neupims::dram {

double
PowerModel::energyPj(const ChannelActivity &a) const
{
    const auto &p = params_;
    const auto &c = a.counts;

    double activations =
        static_cast<double>(c.count(CommandType::Act)) +
        static_cast<double>(c.count(CommandType::PimActivate)) * 4.0;
    // Composite PIM_GEMV commands drive activation waves internally;
    // their activations are charged via pimBankBusyCycles rows below.
    double e = activations * p.actPrePj;
    e += static_cast<double>(c.count(CommandType::Rd)) * p.readBurstPj;
    e += static_cast<double>(c.count(CommandType::Wr)) * p.writeBurstPj;
    e += static_cast<double>(c.count(CommandType::Ref)) * p.refreshPj;
    e += static_cast<double>(c.count(CommandType::PimGwrite)) *
         p.gwritePj;
    e += static_cast<double>(c.count(CommandType::PimRdResult) +
                             c.count(CommandType::PimGemv)) *
         p.readBurstPj; // result readback bursts

    // PIM compute: 4x read power for every bank-cycle the adder trees
    // run. Read power per cycle is one burst energy over tBL cycles.
    double read_power_pj_per_cycle =
        p.readBurstPj / static_cast<double>(timing_.tBL);
    e += static_cast<double>(a.pimBankBusyCycles) *
         read_power_pj_per_cycle * p.pimComputeFactor /
         p.pimArrayEnergyDivisor;

    // Implicit activations of composite rounds: one row activation per
    // pimComputePerRow cycles of bank busy time.
    double implicit_rows =
        static_cast<double>(a.pimBankBusyCycles) /
        static_cast<double>(timing_.pimComputePerRow);
    double explicit_pim_rows =
        static_cast<double>(c.count(CommandType::PimActivate)) * 4.0;
    double composite_rows = implicit_rows - explicit_pim_rows;
    if (composite_rows > 0)
        e += composite_rows * p.actPrePj;

    return e;
}

double
PowerModel::averagePowerMw(const ChannelActivity &a) const
{
    if (a.windowCycles == 0)
        return 0.0;
    double background = params_.backgroundMw;
    if (a.dualRowBuffers)
        background += params_.dualBufferBackgroundMw;
    // pJ / ns == mW.
    double dynamic =
        energyPj(a) / static_cast<double>(a.windowCycles);
    return background + dynamic;
}

} // namespace neupims::dram
