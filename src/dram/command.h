/**
 * @file
 * DRAM and PIM command vocabulary (paper §5.2, Table 1).
 *
 * The regular DRAM commands are the usual ACT/PRE/RD/WR/REF set. The
 * baseline Newton-style PIM interface adds PIM_GWRITE, PIM_ACTIVATE
 * (grouped 4-bank activation), PIM_DOTPRODUCT and PIM_RDRESULT.
 * NeuPIMs augments it with PIM_HEADER (dimensionality announcement so
 * the controller can schedule around refresh), the composite PIM_GEMV
 * (k dot-products + result readout in a single C/A transaction), and
 * PIM_PRECHARGE (precharge of the dedicated PIM row buffer).
 */

#ifndef NEUPIMS_DRAM_COMMAND_H_
#define NEUPIMS_DRAM_COMMAND_H_

#include <cstdint>
#include <string_view>

namespace neupims::dram {

enum class CommandType : std::uint8_t
{
    Act,
    Pre,
    Rd,
    Wr,
    Ref,
    PimGwrite,
    PimActivate,
    PimDotProduct,
    PimRdResult,
    PimHeader,
    PimGemv,
    PimPrecharge,
    NumTypes,
};

constexpr int kNumCommandTypes = static_cast<int>(CommandType::NumTypes);

constexpr bool
isPimCommand(CommandType t)
{
    return t >= CommandType::PimGwrite && t <= CommandType::PimPrecharge;
}

constexpr std::string_view
commandName(CommandType t)
{
    switch (t) {
      case CommandType::Act: return "ACT";
      case CommandType::Pre: return "PRE";
      case CommandType::Rd: return "RD";
      case CommandType::Wr: return "WR";
      case CommandType::Ref: return "REF";
      case CommandType::PimGwrite: return "PIM_GWRITE";
      case CommandType::PimActivate: return "PIM_ACTIVATE";
      case CommandType::PimDotProduct: return "PIM_DOTPRODUCT";
      case CommandType::PimRdResult: return "PIM_RDRESULT";
      case CommandType::PimHeader: return "PIM_HEADER";
      case CommandType::PimGemv: return "PIM_GEMV";
      case CommandType::PimPrecharge: return "PIM_PRECHARGE";
      default: return "?";
    }
}

/** Per-command issue counters, used for Fig. 9 and the power model. */
struct CommandCounts
{
    std::uint64_t counts[kNumCommandTypes] = {};

    void record(CommandType t) { ++counts[static_cast<int>(t)]; }

    std::uint64_t
    count(CommandType t) const
    {
        return counts[static_cast<int>(t)];
    }

    std::uint64_t
    totalPim() const
    {
        std::uint64_t n = 0;
        for (int i = 0; i < kNumCommandTypes; ++i) {
            if (isPimCommand(static_cast<CommandType>(i)))
                n += counts[i];
        }
        return n;
    }

    std::uint64_t
    totalMem() const
    {
        std::uint64_t n = 0;
        for (int i = 0; i < kNumCommandTypes; ++i) {
            if (!isPimCommand(static_cast<CommandType>(i)))
                n += counts[i];
        }
        return n;
    }
};

} // namespace neupims::dram

#endif // NEUPIMS_DRAM_COMMAND_H_
