/**
 * @file
 * Physical address mapping for the NeuPIMs HBM device.
 *
 * Linear addresses are page-interleaved across channels first (so a
 * contiguous weight stream engages every channel), then across banks
 * within a channel (so consecutive rows on a channel rotate banks and
 * activations pipeline), matching the row-interleaved KV layout of
 * §6.3 that the PIM GEMV tiles rely on.
 */

#ifndef NEUPIMS_DRAM_ADDRESS_H_
#define NEUPIMS_DRAM_ADDRESS_H_

#include "common/log.h"
#include "common/types.h"
#include "dram/timing.h"

namespace neupims::dram {

struct Location
{
    ChannelId channel = 0;
    BankId bank = 0;
    int row = 0;
    int column = 0; ///< 64 B burst index within the row

    bool
    operator==(const Location &o) const
    {
        return channel == o.channel && bank == o.bank && row == o.row &&
               column == o.column;
    }
};

class AddressMap
{
  public:
    explicit AddressMap(const Organization &org) : org_(&org) {}

    /** Decode a byte address into channel/bank/row/column. */
    Location
    decode(Bytes addr) const
    {
        const auto &o = *org_;
        Bytes burst = addr / o.burstBytes;
        Bytes bursts_per_row = o.pageBytes / o.burstBytes;
        Bytes page = burst / bursts_per_row;
        Location loc;
        loc.column = static_cast<int>(burst % bursts_per_row);
        loc.channel = static_cast<ChannelId>(page % o.channels);
        Bytes chpage = page / o.channels;
        loc.bank = static_cast<BankId>(chpage % o.banksPerChannel);
        loc.row = static_cast<int>(chpage / o.banksPerChannel);
        return loc;
    }

    /** Encode channel/bank/row/column back into a byte address. */
    Bytes
    encode(const Location &loc) const
    {
        const auto &o = *org_;
        Bytes bursts_per_row = o.pageBytes / o.burstBytes;
        Bytes chpage = static_cast<Bytes>(loc.row) * o.banksPerChannel +
                       static_cast<Bytes>(loc.bank);
        Bytes page = chpage * o.channels +
                     static_cast<Bytes>(loc.channel);
        Bytes burst = page * bursts_per_row +
                      static_cast<Bytes>(loc.column);
        return burst * o.burstBytes;
    }

    /** Number of rows per bank implied by the channel capacity. */
    int
    rowsPerBank() const
    {
        const auto &o = *org_;
        return static_cast<int>(o.channelCapacity /
                                (o.pageBytes * o.banksPerChannel));
    }

  private:
    const Organization *org_;
};

} // namespace neupims::dram

#endif // NEUPIMS_DRAM_ADDRESS_H_
