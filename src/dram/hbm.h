/**
 * @file
 * The full HBM-PIM memory of one NeuPIMs device: 32 channels, each
 * with its own memory controller (Table 2), plus aggregate statistics
 * used by the metrics and power layers.
 */

#ifndef NEUPIMS_DRAM_HBM_H_
#define NEUPIMS_DRAM_HBM_H_

#include <memory>
#include <vector>

#include "common/event_queue.h"
#include "common/types.h"
#include "dram/controller.h"
#include "dram/power_model.h"

namespace neupims::dram {

struct MemConfig
{
    TimingParams timing;
    Organization org;
    ControllerConfig ctrl;
};

/**
 * Channel equivalence classes for the channel-symmetry fast path:
 * channels that will receive bit-identical job streams share one
 * simulated controller (the class representative). The identity
 * grouping (every channel its own representative) reproduces the
 * unfolded simulation exactly.
 */
struct SymmetryGroups
{
    /** Per-channel representative; representative(ch) == ch for the
     * channel that is actually simulated. */
    std::vector<ChannelId> representative;
    /** Per-channel size of the class the channel belongs to. */
    std::vector<int> classSize;
    int numClasses = 0;

    static SymmetryGroups
    identity(int channels)
    {
        SymmetryGroups g;
        g.representative.resize(channels);
        g.classSize.assign(channels, 1);
        for (ChannelId ch = 0; ch < channels; ++ch)
            g.representative[ch] = ch;
        g.numClasses = channels;
        return g;
    }
};

class HbmStack
{
  public:
    HbmStack(EventQueue &eq, const MemConfig &cfg);
    HbmStack(EventQueue &eq, const MemConfig &cfg, SymmetryGroups groups);

    int numChannels() const { return cfg_.org.channels; }

    /**
     * The controller simulating @p ch: its own when @p ch is a class
     * representative, the representative's otherwise (the fold means
     * a member channel's behavior is the representative's, replayed).
     */
    MemoryController &
    controller(ChannelId ch)
    {
        return *ctrls_.at(groups_.representative.at(ch));
    }
    const MemoryController &
    controller(ChannelId ch) const
    {
        return *ctrls_.at(groups_.representative.at(ch));
    }

    /** Whether @p ch is simulated (vs folded onto a representative). */
    bool
    isRepresentative(ChannelId ch) const
    {
        return groups_.representative.at(ch) == ch;
    }

    /** The representative channel of @p ch's equivalence class. */
    ChannelId
    representative(ChannelId ch) const
    {
        return groups_.representative.at(ch);
    }

    int classSize(ChannelId ch) const { return groups_.classSize.at(ch); }
    int symmetryClasses() const { return groups_.numClasses; }

    const MemConfig &config() const { return cfg_; }

    /** True when every channel is idle. */
    bool idle() const;

    // --- aggregate statistics -------------------------------------------

    /** Total bytes moved on all channel data buses. */
    Bytes totalDataBusBytes() const;

    /** Sum of per-channel command counts. */
    CommandCounts totalCommandCounts() const;

    /** Sum over channels and banks of PIM compute cycles. */
    Cycle totalPimBankBusyCycles() const;

    /** Sum of per-channel scheduling statistics (row hit/miss/conflict
     * classification, per-class command counts, mode switches, PIM
     * stall/waste integrals); folded channels contribute their
     * representative's bit-identical values. */
    MemSchedStats totalMemSchedStats() const;

    /** Mean MEM-side per-bank data-service fraction over a window:
     * 64 B beats served per bank against the window span. */
    double memBankUtilization(Cycle window_start, Cycle window_end) const;

    /** Mean data-bus utilization across channels over a window. */
    double dataBusUtilization(Cycle window_start, Cycle window_end);

    /**
     * Mean PIM compute utilization over a window: busy bank-cycles
     * against the *sustainable* compute capacity — the power envelope
     * allows only pimParallelBanks banks per channel to run their
     * datapaths concurrently (TimingParams), so that is the capacity
     * the utilization is measured against.
     */
    double pimUtilization(Cycle window_start, Cycle window_end) const;

    /** Sustainable concurrent PIM banks across the device. */
    double
    pimCapacityBanks() const
    {
        return static_cast<double>(cfg_.org.channels) *
               static_cast<double>(cfg_.timing.pimParallelBanks);
    }

    /** Build the power-model activity summary for channel @p ch. */
    ChannelActivity channelActivity(ChannelId ch, Cycle window) const;

  private:
    EventQueue &eq_;
    MemConfig cfg_;
    SymmetryGroups groups_;
    /** Indexed by channel; null for folded (non-representative) slots. */
    std::vector<std::unique_ptr<MemoryController>> ctrls_;
};

} // namespace neupims::dram

#endif // NEUPIMS_DRAM_HBM_H_
