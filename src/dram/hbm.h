/**
 * @file
 * The full HBM-PIM memory of one NeuPIMs device: 32 channels, each
 * with its own memory controller (Table 2), plus aggregate statistics
 * used by the metrics and power layers.
 */

#ifndef NEUPIMS_DRAM_HBM_H_
#define NEUPIMS_DRAM_HBM_H_

#include <memory>
#include <vector>

#include "common/event_queue.h"
#include "common/types.h"
#include "dram/controller.h"
#include "dram/power_model.h"

namespace neupims::dram {

struct MemConfig
{
    TimingParams timing;
    Organization org;
    ControllerConfig ctrl;
};

class HbmStack
{
  public:
    HbmStack(EventQueue &eq, const MemConfig &cfg);

    int numChannels() const { return static_cast<int>(ctrls_.size()); }
    MemoryController &controller(ChannelId ch) { return *ctrls_.at(ch); }
    const MemoryController &controller(ChannelId ch) const
    {
        return *ctrls_.at(ch);
    }
    const MemConfig &config() const { return cfg_; }

    /** True when every channel is idle. */
    bool idle() const;

    // --- aggregate statistics -------------------------------------------

    /** Total bytes moved on all channel data buses. */
    Bytes totalDataBusBytes() const;

    /** Sum of per-channel command counts. */
    CommandCounts totalCommandCounts() const;

    /** Sum over channels and banks of PIM compute cycles. */
    Cycle totalPimBankBusyCycles() const;

    /** Mean data-bus utilization across channels over a window. */
    double dataBusUtilization(Cycle window_start, Cycle window_end);

    /**
     * Mean PIM compute utilization over a window: busy bank-cycles
     * against the *sustainable* compute capacity — the power envelope
     * allows only pimParallelBanks banks per channel to run their
     * datapaths concurrently (TimingParams), so that is the capacity
     * the utilization is measured against.
     */
    double pimUtilization(Cycle window_start, Cycle window_end) const;

    /** Sustainable concurrent PIM banks across the device. */
    double
    pimCapacityBanks() const
    {
        return static_cast<double>(cfg_.org.channels) *
               static_cast<double>(cfg_.timing.pimParallelBanks);
    }

    /** Build the power-model activity summary for channel @p ch. */
    ChannelActivity channelActivity(ChannelId ch, Cycle window) const;

  private:
    EventQueue &eq_;
    MemConfig cfg_;
    std::vector<std::unique_ptr<MemoryController>> ctrls_;
};

} // namespace neupims::dram

#endif // NEUPIMS_DRAM_HBM_H_
