/**
 * @file
 * One HBM pseudo-channel: banks, shared C/A bus, shared data bus,
 * activation power window (tFAW/tRRD) and refresh bookkeeping.
 *
 * The channel is the unit the NeuPIMs scheduler allocates requests to
 * (§5.3): it owns 32 PIM banks and one memory controller. This class
 * holds the *timing state* and exposes issue primitives that compute
 * the earliest legal issue cycle for a command and commit its side
 * effects; policy (queueing, MEM/PIM interleaving, blocked mode) lives
 * in MemoryController.
 */

#ifndef NEUPIMS_DRAM_CHANNEL_H_
#define NEUPIMS_DRAM_CHANNEL_H_

#include <array>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "dram/bank.h"
#include "dram/command.h"
#include "dram/timing.h"

namespace neupims::dram {

class Channel
{
  public:
    Channel(const TimingParams &timing, const Organization &org,
            bool dual_row_buffers);

    const TimingParams &timing() const { return *timing_; }
    const Organization &organization() const { return *org_; }
    int numBanks() const { return banks_.size(); }
    BankRef bank(BankId b) { return BankRef(banks_, b); }
    ConstBankRef bank(BankId b) const { return ConstBankRef(banks_, b); }
    /** The channel's SoA bank state (dense whole-channel scans). */
    BankArray &banks() { return banks_; }
    const BankArray &banks() const { return banks_; }
    bool dualRowBuffers() const { return dualRowBuffers_; }

    /** Bank group of a bank id (4 banks per group, Table 2). */
    int bankGroup(BankId b) const { return b / org_->banksPerGroup; }

    // ------------------------------------------------------------------
    // Earliest-issue queries (no side effects).
    // ------------------------------------------------------------------

    /** Earliest cycle the C/A bus can carry a command of width @p w. */
    Cycle earliestCa(Cycle not_before, Cycle w) const;

    /**
     * Earliest legal ACTIVATE to @p bank on @p side at or after
     * @p not_before, honoring bank state, tRRD, tFAW, C/A bus and any
     * pending refresh window.
     */
    Cycle earliestActivate(BankId bank, BufferSide side,
                           Cycle not_before) const;

    /** Earliest legal column command (RD/WR) to @p bank on @p side. */
    Cycle earliestColumn(BankId bank, BufferSide side, bool is_write,
                         Cycle not_before) const;

    // ------------------------------------------------------------------
    // Issue primitives: compute earliest legal cycle >= not_before,
    // commit all side effects (bank state, buses, tFAW ring, counters)
    // and return the issue cycle.
    // ------------------------------------------------------------------

    Cycle issueActivate(BankId bank, BufferSide side, int row,
                        Cycle not_before);
    /** @return pair{issue cycle, cycle the read data burst completes}. */
    std::pair<Cycle, Cycle> issueRead(BankId bank, BufferSide side,
                                      Cycle not_before);
    std::pair<Cycle, Cycle> issueWrite(BankId bank, BufferSide side,
                                       Cycle not_before);
    Cycle issuePrecharge(BankId bank, BufferSide side, Cycle not_before);

    /** Issue an all-bank refresh; returns the cycle it completes. */
    Cycle issueRefresh(Cycle not_before);

    /**
     * Activate one PIM row in each of @p nbanks consecutive banks
     * starting at @p first (a grouped PIM_ACTIVATION, §5.2: 4 banks
     * per command due to the tFAW power budget; the group consumes one
     * slot of the activation window). When @p charge_ca is false the
     * activation is driven internally by a composite PIM_GEMV command
     * and occupies no C/A slot. @p row distinguishes successive tiles
     * so each round performs a genuine re-activation.
     * @return the activation cycle (row data ready tRCD later).
     */
    Cycle issuePimActivateGroup(BankId first, int nbanks, int row,
                                Cycle not_before, bool charge_ca);

    /** Earliest-issue query matching issuePimActivateGroup. */
    Cycle earliestPimActivateGroup(BankId first, int nbanks,
                                   Cycle not_before, bool needs_ca) const;

    /**
     * Account a PIM command on the C/A bus (header/gwrite/dot-product/
     * gemv/rd-result/pim-activate encodings are wider than regular
     * commands, §5.3). Returns the issue cycle.
     */
    Cycle issuePimCaCommand(CommandType type, Cycle not_before);

    /** Reserve the data bus for @p bursts back-to-back 64 B beats. */
    std::pair<Cycle, Cycle> reserveDataBus(Cycle not_before, int bursts);

    // ------------------------------------------------------------------
    // Refresh management.
    // ------------------------------------------------------------------

    /** Next cycle at which a refresh becomes due. */
    Cycle nextRefreshDue() const { return nextRefresh_; }

    /** Whether a refresh is overdue at @p now and must be issued. */
    bool refreshDue(Cycle now) const { return now >= nextRefresh_; }

    /**
     * Postpone the due refresh because an announced (PIM_HEADER'd) PIM
     * kernel is in flight; JEDEC allows deferring up to 8 intervals.
     * Returns false if the postpone budget is exhausted.
     */
    bool postponeRefresh();

    // ------------------------------------------------------------------
    // Statistics.
    // ------------------------------------------------------------------

    const CommandCounts &commandCounts() const { return counts_; }
    Bytes dataBusBytes() const { return dataBusBytes_; }
    UtilizationTracker &dataBusUtil() { return dataBusUtil_; }
    UtilizationTracker &caBusUtil() { return caBusUtil_; }
    UtilizationTracker &pimComputeUtil() { return pimComputeUtil_; }

    /** Record per-bank PIM adder-tree busy time (utilization stat). */
    void
    recordPimCompute(Cycle start, Cycle end)
    {
        pimComputeUtil_.addBusy(start, end);
    }

  private:
    /** Earliest ACT cycle satisfying tFAW and tRRD at channel level. */
    Cycle actWindowConstraint(BankId bank, Cycle not_before) const;
    /** Commit an ACT at @p when into the tFAW ring / tRRD tracker. */
    void recordActivate(BankId bank, Cycle when);

    const TimingParams *timing_;
    const Organization *org_;
    bool dualRowBuffers_;

    BankArray banks_; ///< SoA per-bank state for the whole channel

    Cycle caNextFree_ = 0;
    Cycle dataNextFree_ = 0;

    /** Ring of the last four ACT issue cycles (tFAW window). */
    std::array<Cycle, 4> actRing_ = {};
    int actRingHead_ = 0;
    Cycle lastActAny_ = 0;      ///< for tRRD_S
    std::vector<Cycle> lastActPerGroup_; ///< for tRRD_L

    Cycle nextRefresh_;
    int postponedRefreshes_ = 0;

    CommandCounts counts_;
    Bytes dataBusBytes_ = 0;
    UtilizationTracker dataBusUtil_;
    UtilizationTracker caBusUtil_;
    UtilizationTracker pimComputeUtil_;
};

} // namespace neupims::dram

#endif // NEUPIMS_DRAM_CHANNEL_H_
