/**
 * @file
 * HBM timing and organization parameters (paper Table 2).
 *
 * All values are in cycles of the 1 GHz command clock. The data bus
 * moves one 64 B burst per cycle (consistent with tCCD_S = 1 in
 * Table 2), i.e. 64 GB/s per channel and 2 TB/s per 32-channel device.
 */

#ifndef NEUPIMS_DRAM_TIMING_H_
#define NEUPIMS_DRAM_TIMING_H_

#include "common/types.h"

namespace neupims::dram {

struct TimingParams
{
    // --- Table 2: HBM timing parameters (1 GHz command clock) ---
    Cycle tRP = 14;     ///< PRECHARGE to ACTIVATE, same bank
    Cycle tRCD = 14;    ///< ACTIVATE to column command, same bank
    Cycle tRAS = 34;    ///< ACTIVATE to PRECHARGE, same bank
    Cycle tRRD_L = 6;   ///< ACTIVATE to ACTIVATE, same bank group
    Cycle tRRD_S = 4;   ///< ACTIVATE to ACTIVATE, different bank group
    Cycle tWR = 16;     ///< write recovery before PRECHARGE
    Cycle tCCD_S = 1;   ///< column-to-column, different bank group
    Cycle tCCD_L = 2;   ///< column-to-column, same bank group
    Cycle tREFI = 3900; ///< average refresh interval
    Cycle tRFC = 260;   ///< refresh cycle time (all banks busy)
    Cycle tFAW = 30;    ///< four-activate window

    // --- Derived / supplementary timings (standard HBM values) ---
    Cycle tCL = 14;     ///< read column access latency
    Cycle tCWL = 10;    ///< write column access latency
    Cycle tBL = 1;      ///< burst occupancy of the data bus (64 B / cycle)
    Cycle tRTP = 5;     ///< read to precharge

    /** Row cycle: minimum ACT-to-ACT on the same bank. */
    Cycle tRC() const { return tRAS + tRP; }

    // --- PIM datapath timings (Newton-style, see DESIGN.md) ---
    /**
     * Cycles for the per-bank datapath to consume one open row. The
     * command-paced multiplier array reads the 1 KB row buffer in
     * 16-element chunks; 160 cycles per row reproduces Newton-class
     * in-bank GEMV throughput once activation waves overlap compute.
     */
    Cycle pimComputePerRow = 80;
    /**
     * Banks allowed to run their GEMV datapaths concurrently in one
     * channel. All-bank compute draws ~4x the power of a read (§8.2,
     * Table 5 assumption), so the same current budget that caps
     * activations at 4-per-tFAW caps concurrent in-bank compute; 8
     * active banks keeps the channel inside the envelope while mem
     * traffic continues on the other banks.
     */
    int pimParallelBanks = 8;
    /** Cycles a PIM_GWRITE occupies (copy one row to global buffer). */
    Cycle tGWRITE = 18;
    /** C/A bus occupancy of one regular DRAM command (ACT/RD/WR/PRE). */
    Cycle caMemCmd = 1;
    /** C/A bus occupancy of one PIM command (wider encoding, §5.3). */
    Cycle caPimCmd = 4;

    /**
     * Refresh guard used when the controller cannot bound a PIM
     * kernel's latency (no PIM_HEADER, §5.2): no PIM round may start
     * within this window before a pending refresh.
     */
    Cycle refreshGuard = 160;
};

struct Organization
{
    int channels = 32;        ///< HBM channels per device (Table 2)
    int banksPerChannel = 32; ///< banks per channel (Table 2)
    int banksPerGroup = 4;    ///< banks per bank group (Table 2)
    Bytes pageBytes = 1024;   ///< DRAM page (row) size (Table 2: 1 KB)
    Bytes channelCapacity = 1_GiB; ///< capacity per channel (Table 2)
    Bytes burstBytes = 64;    ///< one column access moves 64 B

    int bankGroups() const { return banksPerChannel / banksPerGroup; }
    int burstsPerRow() const
    {
        return static_cast<int>(pageBytes / burstBytes);
    }
    Bytes deviceCapacity() const { return channelCapacity * channels; }
    /** Peak data-bus bandwidth of one channel in bytes per cycle. */
    double bytesPerCycle() const
    {
        return static_cast<double>(burstBytes);
    }
};

} // namespace neupims::dram

#endif // NEUPIMS_DRAM_TIMING_H_
